open Gc_memhier

let rng () = Gc_trace.Rng.create 777

(* ---------------------------------------------------------------- geometry *)

let test_geometry_math () =
  let g = Geometry.create ~line_bytes:64 ~row_bytes:4096 in
  Alcotest.(check int) "B" 64 (Geometry.lines_per_row g);
  Alcotest.(check int) "line of 0" 0 (Geometry.line_of_addr g 0);
  Alcotest.(check int) "line of 63" 0 (Geometry.line_of_addr g 63);
  Alcotest.(check int) "line of 64" 1 (Geometry.line_of_addr g 64);
  Alcotest.(check int) "row of 4095" 0 (Geometry.row_of_addr g 4095);
  Alcotest.(check int) "row of 4096" 1 (Geometry.row_of_addr g 4096);
  (* Lines of one row share a block in the block map. *)
  let bm = Geometry.block_map g in
  Alcotest.(check bool) "same row same block" true
    (Gc_trace.Block_map.same_block bm
       (Geometry.line_of_addr g 0)
       (Geometry.line_of_addr g 4032));
  Alcotest.(check bool) "different rows" false
    (Gc_trace.Block_map.same_block bm
       (Geometry.line_of_addr g 0)
       (Geometry.line_of_addr g 4096))

let test_geometry_validation () =
  (match Geometry.create ~line_bytes:0 ~row_bytes:64 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero line accepted");
  (match Geometry.create ~line_bytes:48 ~row_bytes:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-dividing line accepted");
  match Geometry.line_of_addr Geometry.sram_dram (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative address accepted"

let test_presets () =
  Alcotest.(check int) "sram_dram B" 64 (Geometry.lines_per_row Geometry.sram_dram);
  Alcotest.(check int) "dram_flash B" 64 (Geometry.lines_per_row Geometry.dram_flash)

(* --------------------------------------------------------------- workloads *)

let test_sequential_workload () =
  let a = Workloads.sequential ~n:5 ~start:100 ~step:8 in
  Alcotest.(check (array int)) "addresses" [| 100; 108; 116; 124; 132 |] a

let test_matrix_traversals_same_footprint () =
  let rows = 8 and cols = 16 and elem_bytes = 8 and base = 0 in
  let rm = Workloads.matrix_row_major ~rows ~cols ~elem_bytes ~base in
  let cm = Workloads.matrix_col_major ~rows ~cols ~elem_bytes ~base in
  Alcotest.(check int) "same length" (Array.length rm) (Array.length cm);
  let sort a = let c = Array.copy a in Array.sort compare c; c in
  Alcotest.(check (array int)) "same address multiset" (sort rm) (sort cm)

let test_pointer_chase_workload () =
  let a = Workloads.pointer_chase (rng ()) ~n:20 ~nodes:10 ~node_bytes:64 ~base:0 in
  Alcotest.(check int) "cycle" a.(0) a.(10);
  Array.iter
    (fun addr -> Alcotest.(check int) "aligned" 0 (addr mod 64))
    a

let test_zipf_records_bounds () =
  let a =
    Workloads.zipf_records (rng ()) ~n:1000 ~records:50 ~record_bytes:128
      ~alpha:1.0 ~base:4096
  in
  Array.iter
    (fun addr ->
      Alcotest.(check bool) "in range" true
        (addr >= 4096 && addr < 4096 + (50 * 128));
      Alcotest.(check int) "record aligned" 0 ((addr - 4096) mod 128))
    a

let test_interleave_workload () =
  let a = Workloads.interleave [| 1; 2 |] [| 3; 4; 5 |] in
  Alcotest.(check (array int)) "mix" [| 1; 3; 2; 4; 5 |] a

(* --------------------------------------------------------------- hierarchy *)

let geo = Geometry.create ~line_bytes:64 ~row_bytes:512 (* B = 8 *)

let make_hier name k =
  Hierarchy.create geo ~capacity_lines:k ~make_policy:(fun ~k ~blocks ->
      Gc_cache.Registry.make name ~k ~blocks ~seed:11)

let test_streaming_favours_block_policies () =
  (* Stream 64 KiB: 1024 lines in 128 rows, touched sequentially. *)
  let stream = Workloads.sequential ~n:8192 ~start:0 ~step:8 in
  let lru = make_hier "lru" 64 in
  let bl = make_hier "block-lru" 64 in
  let iblp = make_hier "iblp" 64 in
  Hierarchy.run lru stream;
  Hierarchy.run bl stream;
  Hierarchy.run iblp stream;
  let s_lru = Hierarchy.stats lru
  and s_bl = Hierarchy.stats bl
  and s_iblp = Hierarchy.stats iblp in
  (* Each row holds 8 lines = 64 accesses at step 8; LRU misses every line,
     block policies once per row. *)
  Alcotest.(check int) "lru misses every line" 1024 s_lru.Hierarchy.misses;
  Alcotest.(check int) "block-lru misses once per row" 128 s_bl.Hierarchy.misses;
  Alcotest.(check bool) "iblp close to block-lru" true
    (s_iblp.Hierarchy.misses <= 2 * s_bl.Hierarchy.misses);
  Alcotest.(check int) "bytes accounted" (s_bl.Hierarchy.lines_loaded * 64)
    s_bl.Hierarchy.bytes_loaded

let test_skewed_records_favour_item_policies () =
  (* 512 hot records, one per row: whole-row caching wastes 7/8 of the
     cache, shrinking the effective capacity from 256 to 32 records. *)
  let lookups =
    Workloads.zipf_records (rng ()) ~n:20_000 ~records:512 ~record_bytes:512
      ~alpha:0.8 ~base:0
  in
  let lru = make_hier "lru" 256 in
  let bl = make_hier "block-lru" 256 in
  Hierarchy.run lru lookups;
  Hierarchy.run bl lookups;
  let s_lru = Hierarchy.stats lru and s_bl = Hierarchy.stats bl in
  Alcotest.(check bool) "block cache suffers" true
    (s_bl.Hierarchy.misses > s_lru.Hierarchy.misses)

let test_hierarchy_stats_consistency () =
  let h = make_hier "iblp" 128 in
  let stream =
    Workloads.interleave
      (Workloads.sequential ~n:4000 ~start:0 ~step:64)
      (Workloads.pointer_chase (rng ()) ~n:4000 ~nodes:100 ~node_bytes:512
         ~base:1_000_000)
  in
  Hierarchy.run h stream;
  let s = Hierarchy.stats h in
  Alcotest.(check int) "accesses" 8000 s.Hierarchy.accesses;
  Alcotest.(check int) "hits + misses" s.Hierarchy.accesses
    (s.Hierarchy.hits + s.Hierarchy.misses);
  Alcotest.(check int) "hit split" s.Hierarchy.hits
    (s.Hierarchy.spatial_hits + s.Hierarchy.temporal_hits);
  Alcotest.(check bool) "loaded >= misses" true
    (s.Hierarchy.lines_loaded >= s.Hierarchy.misses)

(* --------------------------------------------------------------- two_level *)

let test_two_level_accounting () =
  let geo = Geometry.create ~line_bytes:64 ~row_bytes:512 in
  let stream = Workloads.sequential ~n:4096 ~start:0 ~step:64 in
  let t =
    Two_level.create geo
      ~l1_policy:(fun ~k ~blocks -> Gc_cache.Registry.make "lru" ~k ~blocks ~seed:1)
      ~l1_lines:32
      ~l2_policy:(fun ~k ~blocks -> Gc_cache.Registry.make "iblp" ~k ~blocks ~seed:1)
      ~l2_lines:256
  in
  Two_level.run t stream;
  let s = Two_level.stats t in
  Alcotest.(check int) "l1 sees every access" 4096 s.Two_level.l1.Two_level.accesses;
  Alcotest.(check int) "l2 sees l1 misses" s.Two_level.l1.Two_level.misses
    s.Two_level.l2.Two_level.accesses;
  Alcotest.(check int) "row opens = l2 misses" s.Two_level.l2.Two_level.misses
    s.Two_level.row_opens;
  Alcotest.(check int) "bytes l2->l1" (64 * s.Two_level.l1.Two_level.misses)
    s.Two_level.bytes_l2_to_l1;
  (* A cold sequential stream: L1 misses every line; a GC L2 opens each
     row once (512 rows for 4096 lines at B = 8). *)
  Alcotest.(check int) "l1 misses all" 4096 s.Two_level.l1.Two_level.misses;
  Alcotest.(check int) "one open per row" 512 s.Two_level.row_opens

let test_two_level_gc_l2_beats_item_l2 () =
  (* With spatial locality at the boundary, a GC-aware L2 opens far fewer
     rows than an item-granularity L2. *)
  let geo = Geometry.create ~line_bytes:64 ~row_bytes:1024 in
  let stream =
    Workloads.interleave
      (Workloads.sequential ~n:8192 ~start:0 ~step:64)
      (Workloads.zipf_records (rng ()) ~n:8192 ~records:256 ~record_bytes:64
         ~alpha:1.0 ~base:4_194_304)
  in
  let opens l2_name =
    let t =
      Two_level.create geo
        ~l1_policy:(fun ~k ~blocks -> Gc_cache.Registry.make "lru" ~k ~blocks ~seed:1)
        ~l1_lines:64
        ~l2_policy:(fun ~k ~blocks ->
          Gc_cache.Registry.make l2_name ~k ~blocks ~seed:1)
        ~l2_lines:1024
    in
    Two_level.run t stream;
    (Two_level.stats t).Two_level.row_opens
  in
  Alcotest.(check bool) "GC L2 opens fewer rows" true
    (opens "iblp" < opens "lru")

(* ----------------------------------------------------------------- kernels *)

(* Kernel streams come from the shared catalog (also the source for
   bench/main.ml and Gc_analysis.Catalog), so every consumer exercises
   the same canonical parameters. *)
let gen ?(seed = 777) name size =
  match Kernels.find name with
  | Some e -> e.Kernels.generate size ~seed
  | None -> Alcotest.failf "kernel %S missing from the catalog" name

let test_matmul_same_footprint () =
  let naive = gen "matmul-naive" Kernels.Small in
  let blocked = gen "matmul-blocked" Kernels.Small in
  Alcotest.(check int) "same access count" (Array.length naive)
    (Array.length blocked);
  let sort arr = let copy = Array.copy arr in Array.sort compare copy; copy in
  Alcotest.(check (array int)) "same address multiset" (sort naive) (sort blocked)

let test_blocked_matmul_fewer_row_opens () =
  let geo = Geometry.create ~line_bytes:64 ~row_bytes:512 in
  let run addrs =
    let h =
      Hierarchy.create geo ~capacity_lines:64 ~make_policy:(fun ~k ~blocks ->
          Gc_cache.Registry.make "block-lru" ~k ~blocks ~seed:1)
    in
    Hierarchy.run h addrs;
    (Hierarchy.stats h).Hierarchy.misses
  in
  let naive = run (gen "matmul-naive" Kernels.Bench) in
  let blocked = run (gen "matmul-blocked" Kernels.Bench) in
  Alcotest.(check bool)
    (Printf.sprintf "blocked %d < naive %d row opens" blocked naive)
    true
    (2 * blocked < naive)

let test_stencil_shape () =
  let addrs = gen "stencil" Kernels.Small in
  Alcotest.(check int) "5 accesses per interior cell per iter" (2 * 64 * 5)
    (Array.length addrs)

let test_btree_hot_root () =
  let addrs = gen "btree" Kernels.Small in
  (* Depth = 3 (16^3 = 4096): every lookup visits the root first. *)
  Alcotest.(check int) "depth 3" 300 (Array.length addrs);
  Alcotest.(check int) "root first" 0 addrs.(0);
  Alcotest.(check int) "root every lookup" 0 addrs.(3)

let test_catalog_well_formed () =
  let names = Kernels.names in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "names unique" (List.length names) (List.length sorted);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Kernels.name ^ " documented")
        true
        (String.length e.Kernels.doc > 10);
      (* Same seed, same stream: the catalog is deterministic. *)
      Alcotest.(check (array int))
        (e.Kernels.name ^ " deterministic")
        (e.Kernels.generate Kernels.Small ~seed:5)
        (e.Kernels.generate Kernels.Small ~seed:5);
      Alcotest.(check bool)
        (e.Kernels.name ^ " non-empty")
        true
        (Array.length (e.Kernels.generate Kernels.Small ~seed:5) > 0))
    Kernels.catalog;
  Alcotest.(check (option string))
    "find" (Some "stencil")
    (Option.map (fun e -> e.Kernels.name) (Kernels.find "stencil"));
  Alcotest.(check bool) "find unknown" true (Kernels.find "nope" = None)

let test_hash_join_mixes () =
  let addrs = gen "hash-join" Kernels.Small in
  Alcotest.(check int) "2 accesses per row" 600 (Array.length addrs);
  (* Table accesses ascend; hash accesses stay in the bucket range. *)
  Alcotest.(check int) "first table row" 0 addrs.(0);
  Alcotest.(check bool) "hash in range" true
    (addrs.(1) >= 1_048_576 && addrs.(1) < 1_048_576 + (32 * 16))

(* --------------------------------------------------------------- writeback *)

let test_writeback_accounting () =
  let geo = Geometry.create ~line_bytes:64 ~row_bytes:512 in
  let wb =
    Writeback.create geo ~capacity_lines:8 ~make_policy:(fun ~k ~blocks ->
        Gc_cache.Registry.make "lru" ~k ~blocks ~seed:1)
  in
  (* Write 8 lines of one row (fills the cache), then stream reads to evict
     them: every dirty line must be written back, coalescing into row
     writes. *)
  Writeback.run wb (Workloads.log_append ~n:8 ~base:0 ~record_bytes:64);
  Writeback.run wb
    (Workloads.read_write_mix (rng ())
       ~addrs:(Workloads.sequential ~n:16 ~start:65_536 ~step:64)
       ~write_fraction:0.);
  Writeback.flush wb;
  let s = Writeback.stats wb in
  Alcotest.(check int) "writes" 8 s.Writeback.writes;
  Alcotest.(check int) "reads" 16 s.Writeback.reads;
  Alcotest.(check int) "all dirty lines written back" 8 s.Writeback.dirty_evictions;
  Alcotest.(check int) "bytes written" (8 * 64) s.Writeback.bytes_written;
  Alcotest.(check bool) "row writes coalesce" true (s.Writeback.writeback_rows <= 8)

let test_writeback_log_coalesces_with_block_policy () =
  (* An append-only log: with a whole-row policy, the 8 dirty lines of each
     row are evicted together and coalesce into one row write; an item
     policy evicts them one by one (8 row writes). *)
  let geo = Geometry.create ~line_bytes:64 ~row_bytes:512 in
  let run name =
    let wb =
      Writeback.create geo ~capacity_lines:64 ~make_policy:(fun ~k ~blocks ->
          Gc_cache.Registry.make name ~k ~blocks ~seed:1)
    in
    Writeback.run wb (Workloads.log_append ~n:4096 ~base:0 ~record_bytes:64);
    Writeback.flush wb;
    (Writeback.stats wb).Writeback.writeback_rows
  in
  let item_rows = run "lru" and block_rows = run "block-lru" in
  Alcotest.(check bool)
    (Printf.sprintf "block policy coalesces (%d vs %d row writes)" block_rows
       item_rows)
    true
    (block_rows * 4 <= item_rows)

let test_writeback_clean_reads_write_nothing () =
  let geo = Geometry.sram_dram in
  let wb =
    Writeback.create geo ~capacity_lines:128 ~make_policy:(fun ~k ~blocks ->
        Gc_cache.Registry.make "iblp" ~k ~blocks ~seed:1)
  in
  Writeback.run wb
    (Workloads.read_write_mix (rng ())
       ~addrs:(Workloads.sequential ~n:10_000 ~start:0 ~step:64)
       ~write_fraction:0.);
  Writeback.flush wb;
  let s = Writeback.stats wb in
  Alcotest.(check int) "no write-backs" 0 s.Writeback.dirty_evictions;
  Alcotest.(check int) "no bytes written" 0 s.Writeback.bytes_written

let test_writeback_flush_idempotent () =
  let geo = Geometry.create ~line_bytes:64 ~row_bytes:512 in
  let wb =
    Writeback.create geo ~capacity_lines:16 ~make_policy:(fun ~k ~blocks ->
        Gc_cache.Registry.make "lru" ~k ~blocks ~seed:1)
  in
  Writeback.run wb (Workloads.log_append ~n:8 ~base:0 ~record_bytes:64);
  Writeback.flush wb;
  let first = (Writeback.stats wb).Writeback.dirty_evictions in
  Writeback.flush wb;
  Alcotest.(check int) "second flush writes nothing" first
    (Writeback.stats wb).Writeback.dirty_evictions

let test_two_level_filtering () =
  (* L2 never sees more accesses than L1 misses, and row opens never exceed
     L2 accesses. *)
  let geo = Geometry.create ~line_bytes:64 ~row_bytes:1024 in
  let t =
    Two_level.create geo
      ~l1_policy:(fun ~k ~blocks -> Gc_cache.Registry.make "lru" ~k ~blocks ~seed:2)
      ~l1_lines:128
      ~l2_policy:(fun ~k ~blocks -> Gc_cache.Registry.make "gcm" ~k ~blocks ~seed:2)
      ~l2_lines:1024
  in
  Two_level.run t
    (Workloads.zipf_records (rng ()) ~n:30_000 ~records:4096 ~record_bytes:64
       ~alpha:0.9 ~base:0);
  let s = Two_level.stats t in
  Alcotest.(check bool) "l2 accesses = l1 misses" true
    (s.Two_level.l2.Two_level.accesses = s.Two_level.l1.Two_level.misses);
  Alcotest.(check bool) "row opens <= l2 accesses" true
    (s.Two_level.row_opens <= s.Two_level.l2.Two_level.accesses);
  Alcotest.(check bool) "filtering happened" true
    (s.Two_level.l2.Two_level.accesses < s.Two_level.l1.Two_level.accesses)

let () =
  Alcotest.run "gc_memhier"
    [
      ( "geometry",
        [
          Alcotest.test_case "math" `Quick test_geometry_math;
          Alcotest.test_case "validation" `Quick test_geometry_validation;
          Alcotest.test_case "presets" `Quick test_presets;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "sequential" `Quick test_sequential_workload;
          Alcotest.test_case "matrix traversals" `Quick test_matrix_traversals_same_footprint;
          Alcotest.test_case "pointer chase" `Quick test_pointer_chase_workload;
          Alcotest.test_case "zipf records" `Quick test_zipf_records_bounds;
          Alcotest.test_case "interleave" `Quick test_interleave_workload;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "streaming" `Quick test_streaming_favours_block_policies;
          Alcotest.test_case "skewed records" `Quick test_skewed_records_favour_item_policies;
          Alcotest.test_case "stats consistency" `Quick test_hierarchy_stats_consistency;
        ] );
      ( "two_level",
        [
          Alcotest.test_case "accounting" `Quick test_two_level_accounting;
          Alcotest.test_case "GC L2 beats item L2" `Quick test_two_level_gc_l2_beats_item_l2;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "matmul footprint" `Quick test_matmul_same_footprint;
          Alcotest.test_case "blocking helps" `Quick test_blocked_matmul_fewer_row_opens;
          Alcotest.test_case "stencil shape" `Quick test_stencil_shape;
          Alcotest.test_case "btree hot root" `Quick test_btree_hot_root;
          Alcotest.test_case "hash join" `Quick test_hash_join_mixes;
          Alcotest.test_case "catalog well-formed" `Quick test_catalog_well_formed;
        ] );
      ( "writeback",
        [
          Alcotest.test_case "accounting" `Quick test_writeback_accounting;
          Alcotest.test_case "log coalesces" `Quick test_writeback_log_coalesces_with_block_policy;
          Alcotest.test_case "clean reads" `Quick test_writeback_clean_reads_write_nothing;
          Alcotest.test_case "flush idempotent" `Quick test_writeback_flush_idempotent;
        ] );
      ( "two_level_more",
        [ Alcotest.test_case "filtering" `Quick test_two_level_filtering ] );
    ]
