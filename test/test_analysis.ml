(* Gc_analysis: the access-program IR, loop re-rolling, the pure cache
   model, the must/may age domain's lattice laws, both engines' verdicts
   on hand-checked programs, the simulator cross-validation (the
   acceptance gate: zero contradictions over every catalog program x
   standard config), and the gcanalyze CLI incl. the golden fixture.

   The "fuzz" group re-runs the randomized properties at GC_FUZZ_COUNT
   iterations — `dune build @fuzz` deepens it. *)

module A = Gc_analysis
module Program = A.Program
module Reroll = A.Reroll
module Cache_model = A.Cache_model
module Age_domain = A.Age_domain
module Report = A.Report
module Engine = A.Engine
module Catalog = A.Catalog
module Crosscheck = A.Crosscheck
module Json = Gc_obs.Json

let fuzz_count =
  match Option.bind (Sys.getenv_opt "GC_FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 1000

let fuzz name gen prop = Test_util.qcheck ~count:fuzz_count name gen prop
let singleton = Gc_trace.Block_map.singleton
let mk specs = Program.make singleton specs

let verdicts (run : Report.run) =
  Array.map (fun p -> p.Report.verdict) run.Report.points

let check_verdicts msg expected run =
  Alcotest.(check (list string))
    msg
    (List.map Report.verdict_name expected)
    (Array.to_list (verdicts run) |> List.map Report.verdict_name)

(* ---------------------------------------------------------------- program *)

let test_program_numbering () =
  let p =
    mk
      Program.
        [
          access 4;
          loop 2 [ access 5; branch [ access 6 ] [ access 7 ] ];
          access 8;
        ]
  in
  Alcotest.(check int) "points" 5 p.Program.points;
  Alcotest.(check (array int))
    "pre-order items" [| 4; 5; 6; 7; 8 |] (Program.point_items p);
  (* loop body = 2 accesses per iteration (branch counts one arm) *)
  Alcotest.(check int) "unrolled" 6 (Program.unrolled_length p)

let test_program_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> mk [ Program.access (-1) ]);
  raises (fun () -> mk [ Program.loop 0 [ Program.access 0 ] ]);
  raises (fun () ->
      (* 4000^3 = 6.4e10 unrolled accesses: over the cap. *)
      mk
        [
          Program.loop 4000
            [ Program.loop 4000 [ Program.loop 4000 [ Program.access 0 ] ] ];
        ])

let test_program_executions () =
  let p =
    mk Program.[ access 0; branch [ access 1 ] [ access 2 ]; access 3 ]
  in
  let paths = Program.executions p in
  Alcotest.(check int) "two branch resolutions" 2 (List.length paths);
  let items path = Array.to_list (Array.map snd path) in
  Alcotest.(check (list (list int)))
    "then-first order"
    [ [ 0; 1; 3 ]; [ 0; 2; 3 ] ]
    (List.map items paths);
  Alcotest.(check bool) "not truncated" false (Program.truncated p);
  (* 8 nested branches = 256 resolutions; the default cap is 64. *)
  let deep =
    mk
      (List.init 8 (fun i ->
           Program.branch [ Program.access i ] [ Program.access (8 + i) ]))
  in
  Alcotest.(check int)
    "capped" 64
    (List.length (Program.executions deep));
  Alcotest.(check bool) "truncation reported" true (Program.truncated deep)

(* ----------------------------------------------------------------- reroll *)

let unroll p =
  match Program.executions p with
  | [ path ] -> Array.map snd path
  | _ -> Alcotest.fail "rerolled program should be branch-free"

let test_reroll_simple () =
  let p = Reroll.of_items singleton [| 1; 2; 3; 1; 2; 3; 1; 2; 3 |] in
  Alcotest.(check int) "3 points" 3 p.Program.points;
  Alcotest.(check int) "9 unrolled" 9 (Program.unrolled_length p);
  (match p.Program.body with
  | [ Program.Loop { count = 3; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single loop of count 3");
  Alcotest.(check (array int))
    "round-trip" [| 1; 2; 3; 1; 2; 3; 1; 2; 3 |] (unroll p)

let test_reroll_nested () =
  (* Two sweeps of (4x of item i, i in 0..2): outer loop over inner
     repeats; 24 accesses must re-roll well below 24 points. *)
  let items =
    Array.init 24 (fun i -> i mod 12 / 4)
  in
  let p = Reroll.of_items singleton items in
  Alcotest.(check (array int)) "round-trip" items (unroll p);
  Alcotest.(check bool)
    (Printf.sprintf "compressed (%d points)" p.Program.points)
    true
    (p.Program.points < 12)

let reroll_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"reroll round-trips exactly"
    (QCheck.make
       ~print:(fun l -> String.concat ";" (List.map string_of_int l))
       QCheck.Gen.(list_size (int_range 0 60) (int_range 0 5)))
    (fun l ->
      let items = Array.of_list l in
      unroll (Reroll.of_items singleton items) = items)

(* ------------------------------------------------------------ cache model *)

let policy_gen =
  QCheck.Gen.oneofl [ Cache_model.Lru; Cache_model.Fifo; Cache_model.Plru ]

let config_gen =
  QCheck.Gen.(
    let* policy = policy_gen in
    let* sets = oneofl [ 1; 2 ] in
    let* ways = oneofl [ 1; 2; 3; 4 ] in
    return { Cache_model.policy; sets; ways })

let config_print (cfg : Cache_model.config) =
  Printf.sprintf "%s sets=%d ways=%d"
    (Cache_model.policy_name cfg.policy)
    cfg.sets cfg.ways

let model_vs_simulator_arbitrary =
  QCheck.make
    ~print:(fun (cfg, items) ->
      Printf.sprintf "%s [%s]" (config_print cfg)
        (String.concat ";" (List.map string_of_int items)))
    QCheck.Gen.(
      pair config_gen (list_size (int_range 0 50) (int_range 0 9)))

(* The pure model must agree with the imperative lib/cache machinery
   access for access — this is what makes the exact engine's verdicts
   claims about the real simulator. *)
let model_matches_simulator (cfg, items) =
  let sim =
    Gc_cache.Simulator.create (Crosscheck.dynamic_policy cfg) singleton
  in
  let st = ref (Cache_model.init cfg) in
  List.for_all
    (fun item ->
      let model_hit, st' = Cache_model.access cfg !st item in
      st := st';
      let sim_hit =
        match Gc_cache.Simulator.access sim item with
        | Gc_cache.Policy.Hit _ -> true
        | Gc_cache.Policy.Miss _ -> false
      in
      model_hit = sim_hit)
    items

let test_model_immutability () =
  let cfg = { Cache_model.policy = Cache_model.Lru; sets = 1; ways = 2 } in
  let st0 = Cache_model.init cfg in
  let _, st1 = Cache_model.access cfg st0 1 in
  let _, _ = Cache_model.access cfg st1 2 in
  Alcotest.(check bool) "st0 still cold" false (Cache_model.mem cfg st0 1);
  Alcotest.(check bool) "st1 unchanged" true (Cache_model.mem cfg st1 1);
  Alcotest.(check bool) "st1 unchanged (2)" false (Cache_model.mem cfg st1 2)

(* ------------------------------------------------------------- age domain *)

let lru_cfg ?(sets = 1) ways = { Cache_model.policy = Cache_model.Lru; sets; ways }

let domain_of cfg items =
  List.fold_left (fun d x -> Age_domain.transfer cfg d x) Age_domain.init items

let items_gen = QCheck.Gen.(list_size (int_range 0 30) (int_range 0 7))

let domain_pair_arbitrary =
  QCheck.make
    ~print:(fun (ways, l1, l2) ->
      Printf.sprintf "ways=%d [%s] [%s]" ways
        (String.concat ";" (List.map string_of_int l1))
        (String.concat ";" (List.map string_of_int l2)))
    QCheck.Gen.(
      let* ways = oneofl [ 1; 2; 4 ] in
      let* l1 = items_gen in
      let* l2 = items_gen in
      return (ways, l1, l2))

let join_upper_bound_prop (ways, l1, l2) =
  let cfg = lru_cfg ways in
  let d1 = domain_of cfg l1 and d2 = domain_of cfg l2 in
  let j = Age_domain.join d1 d2 in
  Age_domain.leq d1 j && Age_domain.leq d2 j

let widen_covers_prop (ways, l1, l2) =
  let cfg = lru_cfg ways in
  let d1 = domain_of cfg l1 and d2 = domain_of cfg l2 in
  let w = Age_domain.widen d1 d2 in
  Age_domain.leq d1 w && Age_domain.leq d2 w

let widen_terminates_prop (ways, l1, l2) =
  (* Iterating widen over any transfer sequence must reach a fixpoint
     quickly: 8 distinct items x (ways+1) possible bounds caps the
     strictly-increasing chain well under 64 steps. *)
  let cfg = lru_cfg ways in
  let d2 = domain_of cfg l2 in
  let rec go d steps =
    if steps > 64 then false
    else
      let next =
        Age_domain.widen d
          (Age_domain.join d
             (List.fold_left (fun d x -> Age_domain.transfer cfg d x) d l1))
      in
      if Age_domain.leq next d then true else go next (steps + 1)
  in
  go d2 0

let transfer_monotone_prop (ways, l1, l2) =
  let cfg = lru_cfg ways in
  let d1 = domain_of cfg l1 in
  let d2 = Age_domain.join d1 (domain_of cfg l2) in
  (* d1 <= d2 by join; transfer must preserve the ordering for any x. *)
  List.for_all
    (fun x ->
      Age_domain.leq
        (Age_domain.transfer cfg d1 x)
        (Age_domain.transfer cfg d2 x))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let soundness_arbitrary =
  QCheck.make
    ~print:(fun (ways, sets, l) ->
      Printf.sprintf "ways=%d sets=%d [%s]" ways sets
        (String.concat ";" (List.map string_of_int l)))
    QCheck.Gen.(
      let* ways = oneofl [ 1; 2; 4 ] in
      let* sets = oneofl [ 1; 2 ] in
      let* l = list_size (int_range 0 40) (int_range 0 7) in
      return (ways, sets, l))

(* Gamma-soundness along every straight-line prefix: the concrete state
   stays inside the abstract state's concretization, and the verdict
   never contradicts the concrete outcome. *)
let domain_sound_prop (ways, sets, l) =
  let cfg = lru_cfg ~sets ways in
  let st = ref (Cache_model.init cfg) in
  let d = ref Age_domain.init in
  List.for_all
    (fun x ->
      let verdict = Age_domain.classify !d x in
      let hit, st' = Cache_model.access cfg !st x in
      let consistent =
        match verdict with
        | Report.Always_hit -> hit
        | Report.Always_miss -> not hit
        | Report.Unknown -> true
      in
      st := st';
      d := Age_domain.transfer cfg !d x;
      consistent && Age_domain.concretizes cfg !d !st)
    l

let test_age_domain_hand () =
  let cfg = lru_cfg 2 in
  let d = domain_of cfg [ 1; 2 ] in
  Alcotest.(check (option int)) "must 2 at age 0" (Some 0) (Age_domain.must_age d 2);
  Alcotest.(check (option int)) "must 1 at age 1" (Some 1) (Age_domain.must_age d 1);
  Alcotest.(check string) "1 hits" "always-hit"
    (Report.verdict_name (Age_domain.classify d 1));
  Alcotest.(check string) "3 misses" "always-miss"
    (Report.verdict_name (Age_domain.classify d 3));
  let d = domain_of cfg [ 1; 2; 3 ] in
  (* 1 aged out of must (age would be 2 = ways) but may still be cached
     concretely?  No: ways=2 and two younger distinct items force it out;
     1 also left may, so a re-access is a definite miss. *)
  Alcotest.(check (option int)) "1 out of must" None (Age_domain.must_age d 1);
  Alcotest.(check string) "1 definitely out" "always-miss"
    (Report.verdict_name (Age_domain.classify d 1));
  (* After a possible hit (2 in may), lower bounds must not grow. *)
  let d = domain_of cfg [ 1; 2; 1; 2 ] in
  Alcotest.(check string) "2 still always-hit" "always-hit"
    (Report.verdict_name (Age_domain.classify d 2))

(* ---------------------------------------------------------------- engines *)

let test_demo_exact_ways4 () =
  let run =
    Engine.run Engine.Exact (lru_cfg 4) ~name:"demo" (Catalog.demo ())
  in
  check_verdicts "demo exact lru ways=4"
    Report.
      [
        Always_miss;
        (* @0 cold 0 *)
        Always_miss;
        (* @1 cold 1 *)
        Always_hit;
        (* @2 loop 0: resident every iteration at k=4 *)
        Always_hit;
        (* @3 loop 1 *)
        Unknown;
        (* @4 loop 2: cold miss then hits *)
        Always_hit;
        (* @5 then-arm 0 *)
        Always_miss;
        (* @6 else-arm 3: first touch *)
        Always_hit;
        (* @7 final 0: hits on both arms *)
      ]
    run

let test_demo_exact_ways2 () =
  let run =
    Engine.run Engine.Exact (lru_cfg 2) ~name:"demo" (Catalog.demo ())
  in
  check_verdicts "demo exact lru ways=2"
    Report.
      [
        Always_miss;
        Always_miss;
        Unknown;
        (* @2 hit on iteration 1 only: 2 evicts it afterwards *)
        Unknown;
        Always_miss;
        (* @4 item 2 never survives the loop back edge *)
        Always_miss;
        (* @5 then-arm 0: evicted by 2 *)
        Always_miss;
        (* @6 else-arm 3 *)
        Unknown;
        (* @7 hit after then, miss after else *)
      ]
    run

let test_demo_fifo_plru_exact () =
  (* FIFO ways=4: same classes as LRU here except @2/@3 — 0 and 1 are
     never touched to the front, but nothing evicts at k=4 either. *)
  List.iter
    (fun policy ->
      let cfg = { Cache_model.policy; sets = 1; ways = 4 } in
      let run = Engine.run Engine.Exact cfg ~name:"demo" (Catalog.demo ()) in
      check_verdicts
        (Printf.sprintf "demo exact %s ways=4" (Cache_model.policy_name policy))
        Report.
          [
            Always_miss;
            Always_miss;
            Always_hit;
            Always_hit;
            Unknown;
            Always_hit;
            Always_miss;
            Always_hit;
          ]
        run)
    [ Cache_model.Fifo; Cache_model.Plru ]

let test_age_never_contradicts_exact () =
  (* On every catalog program x LRU config: an age-engine always-* claim
     must agree with the exact engine (which is ground truth). *)
  List.iter
    (fun (name, program) ->
      List.iter
        (fun cfg ->
          if cfg.Cache_model.policy = Cache_model.Lru then begin
            let exact = verdicts (Engine.run Engine.Exact cfg ~name program) in
            let age = verdicts (Engine.run Engine.Age cfg ~name program) in
            Array.iteri
              (fun i v ->
                if v <> Report.Unknown && v <> exact.(i) then
                  Alcotest.failf "%s %s @%d: age %s vs exact %s" name
                    (config_print cfg) i (Report.verdict_name v)
                    (Report.verdict_name exact.(i)))
              age
          end)
        Engine.standard_configs)
    (Catalog.programs ())

let test_grid_shape () =
  let runs = Engine.grid ~name:"demo" (Catalog.demo ()) in
  Alcotest.(check int) "12 exact + 4 age runs" 16 (List.length runs);
  Alcotest.(check int)
    "12 configs" 12
    (List.length Engine.standard_configs)

(* ------------------------------------------------------------- crosscheck *)

(* The PR's acceptance criterion, in-process: every catalog program
   (kernels included) x every standard config, zero contradictions. *)
let test_crosscheck_catalog_clean () =
  let summary =
    Crosscheck.check (Catalog.programs ()) Engine.standard_configs
  in
  Alcotest.(check int) "6 programs" 6 summary.Crosscheck.programs;
  Alcotest.(check int) "96 engine runs" 96 summary.Crosscheck.runs;
  Alcotest.(check bool)
    "always-* claims exist" true
    (summary.Crosscheck.always_claims > 0);
  (match summary.Crosscheck.contradictions with
  | [] -> ()
  | c :: _ ->
      Alcotest.failf "contradiction: %s/%s @%d claimed %s" c.Crosscheck.program
        c.Crosscheck.engine c.Crosscheck.point
        (Report.verdict_name c.Crosscheck.verdict))

let test_crosscheck_catches_unsound () =
  let summary =
    Crosscheck.check ~unsound:true
      [ ("demo", Catalog.demo ()) ]
      Engine.standard_configs
  in
  Alcotest.(check bool)
    "unsound domain caught" true
    (summary.Crosscheck.contradictions <> [])

(* ------------------------------------------------------------------- fuzz *)

let spec_gen =
  (* Random programs: items 0..7, nesting depth <= 2, a few dozen
     accesses; branch resolution space small enough to enumerate. *)
  QCheck.Gen.(
    let access_g = map Program.access (int_range 0 7) in
    let rec spec depth =
      if depth = 0 then access_g
      else
        frequency
          [
            (4, access_g);
            ( 2,
              let* n = int_range 1 3 in
              let* body = list_size (int_range 1 4) (spec (depth - 1)) in
              return (Program.loop n body) );
            ( 1,
              let* t = list_size (int_range 1 3) (spec (depth - 1)) in
              let* e = list_size (int_range 1 3) (spec (depth - 1)) in
              return (Program.branch t e) );
          ]
    in
    list_size (int_range 1 10) (spec 2))

let fuzz_program_arbitrary =
  QCheck.make
    ~print:(fun (specs, cfg) ->
      Format.asprintf "%s over %a" (config_print cfg) Program.pp (mk specs))
    QCheck.Gen.(pair spec_gen config_gen)

let fuzz_no_contradictions (specs, cfg) =
  let program = mk specs in
  let summary = Crosscheck.check [ ("fuzz", program) ] [ cfg ] in
  summary.Crosscheck.contradictions = []

let fuzz_age_sound_vs_exact (specs, cfg) =
  let cfg = { cfg with Cache_model.policy = Cache_model.Lru } in
  let program = mk specs in
  let exact = verdicts (Engine.run Engine.Exact cfg ~name:"fuzz" program) in
  let age = verdicts (Engine.run Engine.Age cfg ~name:"fuzz" program) in
  Array.for_all2
    (fun a e -> a = Report.Unknown || a = e)
    age exact

(* -------------------------------------------------------------------- cli *)

let gcanalyze = "../bin/gcanalyze.exe"

let exec cmd =
  let out = Filename.temp_file "gc_analysis" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd out) in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_cli_list () =
  let code, out = exec (gcanalyze ^ " list") in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " listed") true (Test_util.contains out name))
    (Catalog.names ())

let test_cli_golden () =
  (* The committed fixture, the CLI's --grid --json output, and the
     regen_golden printer must agree byte for byte.  Regenerate after an
     intentional schema change with
     [dune exec test/regen_golden.exe -- gcanalyze > test/golden/gcanalyze.json]. *)
  let golden = read_file "golden/gcanalyze.json" in
  let code, out = exec (gcanalyze ^ " run --program demo --grid --json -") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "CLI output matches the golden file" golden out;
  let rendered =
    Format.asprintf "%a@." Json.pp
      (Report.doc_to_json (Engine.grid ~name:"demo" (Catalog.demo ())))
  in
  Alcotest.(check string) "library printer matches too" golden rendered

let test_cli_golden_covers_grid () =
  (* Fixture-completeness convention (doc/ANALYSIS.md): every standard
     grid cell must appear in the fixture, so a new policy, geometry or
     engine cannot ship without regenerating it. *)
  let doc = Test_util.parse_json_file "golden/gcanalyze.json" in
  let runs = Json.get_list (Option.get (Json.member "runs" doc)) in
  let cells =
    List.map
      (fun r ->
        ( Json.get_string (Option.get (Json.member "engine" r)),
          Json.get_string (Option.get (Json.member "policy" r)),
          Json.get_int (Option.get (Json.member "sets" r)),
          Json.get_int (Option.get (Json.member "ways" r)) ))
      runs
  in
  Alcotest.(check string)
    "schema pinned" "gcanalyze/v1"
    (Json.get_string (Option.get (Json.member "schema" doc)));
  List.iter
    (fun (cfg : Cache_model.config) ->
      let policy = Cache_model.policy_name cfg.policy in
      let expect engine =
        if not (List.mem (engine, policy, cfg.sets, cfg.ways) cells) then
          Alcotest.failf
            "golden fixture is missing %s/%s sets=%d ways=%d — regenerate \
             it (see doc/ANALYSIS.md)"
            engine policy cfg.sets cfg.ways
      in
      expect "exact";
      if cfg.policy = Cache_model.Lru then expect "age")
    Engine.standard_configs

let test_cli_check_exit_codes () =
  let code, _ = exec (gcanalyze ^ " check --program demo") in
  Alcotest.(check int) "sound check exits 0" 0 code;
  let code, out = exec (gcanalyze ^ " check --program demo --unsound") in
  Alcotest.(check int) "unsound check exits 3" 3 code;
  Alcotest.(check bool)
    "contradictions reported" true
    (Test_util.contains out "CONTRADICTION");
  let code, _ = exec (gcanalyze ^ " run --program no-such-program") in
  Alcotest.(check int) "unknown program is a usage error" 2 code;
  let code, _ = exec (gcanalyze ^ " run --program demo --engine age --policy fifo") in
  Alcotest.(check int) "age on fifo is a usage error" 2 code

let test_cli_run_trace () =
  (* A trace fed through stdin is re-rolled and analyzed like a built-in
     program; 0 1 2 repeated thrice under full-size LRU: first pass cold,
     later passes hits. *)
  let tmp = Filename.temp_file "gc_analysis" ".gct" in
  Gc_trace.Trace_io.save tmp
    (Gc_trace.Trace.make Gc_trace.Block_map.singleton
       [| 0; 1; 2; 0; 1; 2; 0; 1; 2 |]);
  let code, out =
    exec (Printf.sprintf "%s run %s --policy lru --ways 4 --engine exact" gcanalyze tmp)
  in
  Sys.remove tmp;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "has always-hit points" true
    (Test_util.contains out "always-hit")

(* ------------------------------------------------------------------ suite *)

let () =
  Alcotest.run "gc_analysis"
    [
      ( "program",
        [
          Alcotest.test_case "numbering" `Quick test_program_numbering;
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "executions" `Quick test_program_executions;
        ] );
      ( "reroll",
        [
          Alcotest.test_case "simple" `Quick test_reroll_simple;
          Alcotest.test_case "nested" `Quick test_reroll_nested;
          QCheck_alcotest.to_alcotest reroll_roundtrip_prop;
        ] );
      ( "cache_model",
        [
          Alcotest.test_case "immutability" `Quick test_model_immutability;
          Test_util.qcheck ~count:500 "model matches lib/cache simulator"
            model_vs_simulator_arbitrary model_matches_simulator;
        ] );
      ( "age_domain",
        [
          Alcotest.test_case "hand classifications" `Quick test_age_domain_hand;
          Test_util.qcheck ~count:500 "join is an upper bound"
            domain_pair_arbitrary join_upper_bound_prop;
          Test_util.qcheck ~count:500 "widen covers both operands"
            domain_pair_arbitrary widen_covers_prop;
          Test_util.qcheck ~count:500 "widening iteration terminates"
            domain_pair_arbitrary widen_terminates_prop;
          Test_util.qcheck ~count:500 "transfer is monotone"
            domain_pair_arbitrary transfer_monotone_prop;
          Test_util.qcheck ~count:500 "abstract state concretizes"
            soundness_arbitrary domain_sound_prop;
        ] );
      ( "engines",
        [
          Alcotest.test_case "demo exact lru k=4" `Quick test_demo_exact_ways4;
          Alcotest.test_case "demo exact lru k=2" `Quick test_demo_exact_ways2;
          Alcotest.test_case "demo exact fifo/plru" `Quick
            test_demo_fifo_plru_exact;
          Alcotest.test_case "age agrees with exact on catalog" `Quick
            test_age_never_contradicts_exact;
          Alcotest.test_case "grid shape" `Quick test_grid_shape;
        ] );
      ( "crosscheck",
        [
          Alcotest.test_case "catalog x grid: no contradictions" `Quick
            test_crosscheck_catalog_clean;
          Alcotest.test_case "unsound domain is caught" `Quick
            test_crosscheck_catches_unsound;
        ] );
      ( "cli",
        [
          Alcotest.test_case "list" `Quick test_cli_list;
          Alcotest.test_case "golden fixture" `Quick test_cli_golden;
          Alcotest.test_case "fixture covers the grid" `Quick
            test_cli_golden_covers_grid;
          Alcotest.test_case "check exit codes" `Quick test_cli_check_exit_codes;
          Alcotest.test_case "run on a trace" `Quick test_cli_run_trace;
        ] );
      ( "fuzz",
        [
          fuzz "fuzz: random programs never contradict the simulator"
            fuzz_program_arbitrary fuzz_no_contradictions;
          fuzz "fuzz: age verdicts imply exact verdicts"
            fuzz_program_arbitrary fuzz_age_sound_vs_exact;
        ] );
    ]
