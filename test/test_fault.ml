(* Robustness suite: the checker-coverage matrix (does the shadow audit
   catch every fault class we can inject?), hardened trace decoding, and
   fuzzing of both codecs.  Fuzz iteration counts scale with GC_FUZZ_COUNT
   (the @fuzz alias raises it); the default keeps the corpus at 10k+ cases
   across the four fuzz properties. *)

module Spec = Gc_fault.Spec
module Coverage = Gc_fault.Coverage
module Injector = Gc_fault.Injector
module Trace_io = Gc_trace.Trace_io
module Trace = Gc_trace.Trace

let fuzz_count =
  match Option.bind (Sys.getenv_opt "GC_FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 2500

let fuzz name gen prop = Test_util.qcheck ~count:fuzz_count name gen prop

(* ------------------------------------------------- checker coverage matrix *)

let test_matrix_all_detected () =
  let outcomes = Coverage.matrix () in
  Alcotest.(check int)
    "one outcome per fault class" (List.length Spec.all)
    (List.length outcomes);
  List.iter
    (fun (o : Coverage.outcome) ->
      let name = Spec.to_string o.fault in
      (match o.fired with
      | None ->
          Alcotest.failf "fault %s never became eligible on the drill trace"
            name
      | Some _ -> ());
      if not o.detected then
        Alcotest.failf "fault %s fired but the audit stayed silent" name)
    outcomes;
  Alcotest.(check (list string))
    "no undetected classes" []
    (List.map Spec.to_string (Coverage.undetected outcomes))

(* The drill trace itself is clean: an un-injected policy survives the
   checked simulator, so the matrix detections are caused by the faults. *)
let test_matrix_negative_control () =
  let trace = Coverage.drill_trace () in
  let m =
    Gc_cache.Simulator.run ~check:true (Gc_cache.Lru.create ~k:4) trace
  in
  Alcotest.(check int) "all accesses simulated" (Trace.length trace)
    m.Gc_cache.Metrics.accesses

(* Hidden evictions are invisible at the faulting access; detection
   requires the trace to re-request the secretly evicted item.  Pin the
   delayed-detection behavior: on a prefix without re-access the audit
   stays silent even though the fault fired. *)
let test_hidden_evict_needs_reaccess () =
  let blocks = Gc_trace.Block_map.uniform ~block_size:4 in
  let no_reuse = Trace.make blocks [| 0; 1; 2; 3; 5; 6 |] in
  let o = Coverage.check Spec.Hidden_evict no_reuse in
  Alcotest.(check bool) "fired" true (o.Coverage.fired <> None);
  Alcotest.(check bool) "not yet detected" false o.Coverage.detected;
  let reuse = Trace.make blocks [| 0; 1; 2; 3; 5; 6; 0; 1; 2; 3 |] in
  let o = Coverage.check Spec.Hidden_evict reuse in
  Alcotest.(check bool) "detected after re-access" true o.Coverage.detected

let test_injector_arm_index () =
  (* Armed past the end of the trace: never fires, simulation is clean. *)
  let trace = Coverage.drill_trace () in
  List.iter
    (fun fault ->
      let o = Coverage.check ~at:10_000 fault trace in
      Alcotest.(check bool)
        (Spec.to_string fault ^ " stays armed")
        true
        (o.Coverage.fired = None && not o.Coverage.detected))
    Spec.all

let test_spec_parse () =
  List.iter
    (fun fault ->
      let s = Spec.to_string fault in
      (match Spec.parse s with
      | Ok { Spec.fault = f; at = 0 } when f = fault -> ()
      | _ -> Alcotest.failf "parse %s" s);
      match Spec.parse (s ^ "@42") with
      | Ok parsed ->
          Alcotest.(check string) "spec_string roundtrip" (s ^ "@42")
            (Spec.spec_string parsed)
      | Error e -> Alcotest.failf "parse %s@42: %s" s e)
    Spec.all;
  (match Spec.parse "no-such-fault" with
  | Error msg ->
      Alcotest.(check bool) "error lists classes" true
        (let rec contains i =
           i + 11 <= String.length msg
           && (String.sub msg i 11 = "phantom-hit" || contains (i + 1))
         in
         contains 0)
  | Ok _ -> Alcotest.fail "accepted unknown class");
  match Spec.parse "phantom-hit@-3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted negative arm index"

(* Graceful degradation: a crashing or violating policy in a sweep becomes
   a structured per-policy error; the survivors' results are intact. *)
let test_sweep_degrades_gracefully () =
  let trace = Test_util.trace_of (4, Array.init 200 (fun i -> (i * 7) mod 40)) in
  let outcomes =
    List.map
      (fun name ->
        Gc_cache.Obs_run.run_policy_result ~k:8 ~seed:1 name trace)
      [ "lru"; "broken:crash@50"; "broken:violate@50"; "fifo" ]
  in
  (match outcomes with
  | [ Ok lru; Error crash; Error violate; Ok fifo ] ->
      Alcotest.(check string) "lru survives" "lru" lru.Gc_cache.Obs_run.policy;
      Alcotest.(check string) "fifo survives" "fifo" fifo.Gc_cache.Obs_run.policy;
      Alcotest.(check string) "crash kind" "exception" crash.Gc_cache.Obs_run.kind;
      Alcotest.(check string)
        "violation kind" "model-violation" violate.Gc_cache.Obs_run.kind
  | _ -> Alcotest.fail "unexpected outcome shape");
  let manifest =
    Gc_cache.Obs_run.manifest_of_outcomes ~tool:"test" ~command:"suite" outcomes
  in
  let errors =
    List.filter_map (fun r -> r.Gc_obs.Manifest.error) manifest.Gc_obs.Manifest.runs
  in
  Alcotest.(check int) "manifest keeps all slots" 4
    (List.length manifest.Gc_obs.Manifest.runs);
  Alcotest.(check int) "two structured errors" 2 (List.length errors)

let test_parallel_try_map () =
  let results =
    Gc_cache.Parallel.try_map ~domains:2
      (fun i -> if i = 2 then failwith "boom" else i * 10)
      [ 0; 1; 2; 3 ]
  in
  match results with
  | [ Ok 0; Ok 10; Error (Failure _); Ok 30 ] -> ()
  | _ -> Alcotest.fail "try_map did not isolate the failing task"

let test_replicates_partial () =
  let trace = Test_util.trace_of (2, Array.init 100 (fun i -> i mod 10)) in
  let make ~seed =
    if seed = 3 then failwith "bad seed" else Gc_cache.Lru.create ~k:4
  in
  let partial = Gc_cache.Replicates.misses_result ~make ~trace ~seeds:[ 1; 2; 3; 4 ] in
  (match partial.Gc_cache.Replicates.summary with
  | Some s -> Alcotest.(check int) "three replicates survive" 3 s.Gc_cache.Replicates.runs
  | None -> Alcotest.fail "summary lost");
  match partial.Gc_cache.Replicates.failed with
  | [ (3, _) ] -> ()
  | _ -> Alcotest.fail "failed seed not recorded"

(* ------------------------------------------------------ decoder diagnostics *)

let err_of = function
  | Error (e : Trace_io.error) -> e
  | Ok _ -> Alcotest.fail "expected a decode error"

let test_text_diagnostics () =
  let e = err_of (Trace_io.of_string_result "gctrace 1\nblocks uniform 4\nrequests 3\n1 2 x\n") in
  Alcotest.(check string) "bad token position" "line 4: expected integer, got \"x\""
    (Trace_io.string_of_error e);
  let e = err_of (Trace_io.of_string_result "gctrace 2\n") in
  Alcotest.(check string) "bad version" "line 1: unsupported version 2"
    (Trace_io.string_of_error e);
  let e = err_of (Trace_io.of_string_result "gctrace 1\nblocks what 3\n") in
  Alcotest.(check string) "bad kind" "line 2: unknown block map kind \"what\""
    (Trace_io.string_of_error e);
  let e = err_of (Trace_io.of_string_result "gctrace 1\nblocks uniform 4\nrequests 2\n7\n") in
  Alcotest.(check string) "truncated" "line 5: expected 2 requests, found 1"
    (Trace_io.string_of_error e);
  let e =
    err_of (Trace_io.of_string_result "gctrace 1\nblocks uniform 4\nrequests 1\n7 9\n")
  in
  Alcotest.(check string) "trailing" "line 4: trailing garbage \"9\" after 1 requests"
    (Trace_io.string_of_error e);
  let e =
    err_of (Trace_io.of_string_result "gctrace 1\nblocks uniform 4\nrequests 1\n-7\n")
  in
  Alcotest.(check string) "negative id" "line 4: negative item id -7"
    (Trace_io.string_of_error e)

let test_text_lenient () =
  match Trace_io.of_string_lenient "gctrace 1\nblocks uniform 4\nrequests 4\n1 x 2 -9\n" with
  | Error e -> Alcotest.failf "lenient failed: %s" (Trace_io.string_of_error e)
  | Ok r ->
      Alcotest.(check int) "kept" 2 (Trace.length r.Trace_io.trace);
      Alcotest.(check int) "dropped" 2 r.Trace_io.dropped;
      Alcotest.(check int) "diagnostics" 2 (List.length r.Trace_io.diagnostics)

let test_text_lenient_truncated () =
  match Trace_io.of_string_lenient "gctrace 1\nblocks uniform 4\nrequests 10\n1 2 3\n" with
  | Error _ -> Alcotest.fail "lenient failed"
  | Ok r ->
      Alcotest.(check int) "kept" 3 (Trace.length r.Trace_io.trace);
      Alcotest.(check int) "dropped counts the missing tail" 7 r.Trace_io.dropped

let test_text_lenient_header_still_strict () =
  match Trace_io.of_string_lenient "gctrace 1\nblocks what 4\nrequests 1\n0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lenient decoded a broken header"

let sample_trace () =
  Trace.make (Gc_trace.Block_map.uniform ~block_size:4)
    (Array.init 257 (fun i -> (i * 13) mod 101))

let test_binary_byte_offsets () =
  let e = err_of (Trace_io.of_bytes_result (Bytes.of_string "")) in
  Alcotest.(check string) "empty" "byte 0: truncated magic"
    (Trace_io.string_of_error e);
  let e = err_of (Trace_io.of_bytes_result (Bytes.of_string "GCTB\001\007")) in
  Alcotest.(check string) "bad kind" "byte 5: unknown block kind 7"
    (Trace_io.string_of_error e);
  let e = err_of (Trace_io.of_bytes_result (Bytes.of_string "GCTB\003")) in
  Alcotest.(check string) "bad version" "byte 4: unsupported version 3"
    (Trace_io.string_of_error e)

let test_binary_varint_overflow () =
  (* Request count of ten 0xff continuation bytes: > 63 significant bits. *)
  let b = Bytes.of_string ("GCTB\001\000\004" ^ String.make 10 '\255') in
  let e = err_of (Trace_io.of_bytes_result b) in
  let msg = Trace_io.string_of_error e in
  Alcotest.(check bool) ("overflow reported: " ^ msg) true
    (String.length msg >= 15
    &&
    let rec contains i =
      i + 15 <= String.length msg
      && (String.sub msg i 15 = "varint overflow" || contains (i + 1))
    in
    contains 0)

let test_binary_length_bomb () =
  (* Header claims 2^50 requests but provides none: must fail cleanly and
     cheaply instead of preallocating from the claimed length. *)
  let buf = Buffer.create 16 in
  Buffer.add_string buf "GCTB\001\000\004";
  let v = ref (1 lsl 50) in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (!v land 0x7f lor 0x80));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v);
  let e = err_of (Trace_io.of_bytes_result (Buffer.to_bytes buf)) in
  Alcotest.(check string) "clean truncation error" "byte 15: truncated request"
    (Trace_io.string_of_error e)

let test_binary_checksum () =
  let t = sample_trace () in
  let b = Trace_io.to_bytes t in
  (match Trace_io.of_bytes_result b with
  | Ok t' -> Alcotest.(check int) "roundtrip" (Trace.length t) (Trace.length t')
  | Error e -> Alcotest.failf "clean decode failed: %s" (Trace_io.string_of_error e));
  (* Corrupt the last footer byte: structure is intact, checksum is not. *)
  let corrupt = Bytes.copy b in
  let last = Bytes.length corrupt - 1 in
  Bytes.set corrupt last (Char.chr (Char.code (Bytes.get corrupt last) lxor 0x01));
  (match Trace_io.of_bytes_result corrupt with
  | Error e ->
      let msg = Trace_io.string_of_error e in
      Alcotest.(check bool) ("checksum mismatch: " ^ msg) true
        (let rec contains i =
           i + 17 <= String.length msg
           && (String.sub msg i 17 = "checksum mismatch" || contains (i + 1))
         in
         contains 0)
  | Ok _ -> Alcotest.fail "accepted corrupted footer");
  (* Truncation loses the footer. *)
  match Trace_io.of_bytes_result (Bytes.sub b 0 (Bytes.length b - 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated payload"

let test_binary_v1_compat () =
  (* A version-1 payload (no footer) from an older writer still decodes. *)
  let t = sample_trace () in
  let b = Trace_io.to_bytes t in
  let v1 = Bytes.sub b 0 (Bytes.length b - 8) in
  Bytes.set v1 4 '\001';
  match Trace_io.of_bytes_result v1 with
  | Ok t' ->
      Alcotest.(check bool) "same requests" true
        (Array.init (Trace.length t) (Trace.get t)
        = Array.init (Trace.length t') (Trace.get t'))
  | Error e -> Alcotest.failf "v1 decode failed: %s" (Trace_io.string_of_error e)

let test_binary_trailing_garbage () =
  let t = sample_trace () in
  let b = Trace_io.to_bytes t in
  let padded = Bytes.cat b (Bytes.of_string "\000") in
  match Trace_io.of_bytes_result padded with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage"

let test_binary_lenient_prefix () =
  let t = sample_trace () in
  let b = Trace_io.to_bytes t in
  (* Cut deep inside the request stream. *)
  let cut = Bytes.sub b 0 (Bytes.length b - 60) in
  match Trace_io.of_bytes_lenient cut with
  | Error e -> Alcotest.failf "lenient failed: %s" (Trace_io.string_of_error e)
  | Ok r ->
      let kept = Trace.length r.Trace_io.trace in
      Alcotest.(check bool) "kept a strict prefix" true
        (kept > 0 && kept < Trace.length t);
      Alcotest.(check int) "drop accounting" (Trace.length t - kept)
        r.Trace_io.dropped;
      Alcotest.(check bool) "prefix is faithful" true
        (Array.init kept (Trace.get r.Trace_io.trace)
        = Array.init kept (Trace.get t))

(* ------------------------------------------------------------------ fuzzing *)

(* Random structural mutations over a serialized trace: flip, insert,
   delete, truncate.  The decoders must return — Ok or Error — without
   raising anything. *)
let mutations_gen =
  QCheck.Gen.(
    small_list
      (triple (int_range 0 3) (int_bound 1_000_000) (int_bound 255)))

let apply_mutations s muts =
  List.fold_left
    (fun s (op, pos, byte) ->
      let n = String.length s in
      if n = 0 then s
      else
        let pos = pos mod n in
        match op with
        | 0 ->
            (* flip *)
            String.mapi
              (fun i c -> if i = pos then Char.chr (Char.code c lxor byte) else c)
              s
        | 1 -> String.sub s 0 pos ^ String.make 1 (Char.chr byte) ^ String.sub s pos (n - pos)
        | 2 -> String.sub s 0 pos ^ String.sub s (pos + 1) (n - pos - 1)
        | _ -> String.sub s 0 pos)
    s muts

let total_text_decode s =
  (match Trace_io.of_string_result s with
  | Ok t -> assert (Trace.length t >= 0)
  | Error _ -> ());
  (match Trace_io.of_string_lenient s with
  | Ok r -> assert (r.Trace_io.dropped >= 0)
  | Error _ -> ());
  true

let total_binary_decode b =
  (match Trace_io.of_bytes_result b with
  | Ok t -> assert (Trace.length t >= 0)
  | Error _ -> ());
  (match Trace_io.of_bytes_lenient b with
  | Ok r -> assert (r.Trace_io.dropped >= 0)
  | Error _ -> ());
  true

let fuzz_tests =
  [
    fuzz "fuzz: text codec roundtrip"
      (Test_util.small_trace_arbitrary ())
      (fun input ->
        let t = Test_util.trace_of input in
        let t' = Trace_io.of_string (Trace_io.to_string t) in
        Array.init (Trace.length t) (Trace.get t)
        = Array.init (Trace.length t') (Trace.get t'));
    fuzz "fuzz: binary codec roundtrip"
      (Test_util.small_trace_arbitrary ())
      (fun input ->
        let t = Test_util.trace_of input in
        let t' = Trace_io.of_bytes (Trace_io.to_bytes t) in
        Array.init (Trace.length t) (Trace.get t)
        = Array.init (Trace.length t') (Trace.get t'));
    fuzz "fuzz: mutated text never escapes"
      QCheck.(pair (Test_util.small_trace_arbitrary ()) (QCheck.make mutations_gen))
      (fun (input, muts) ->
        let s = Trace_io.to_string (Test_util.trace_of input) in
        total_text_decode (apply_mutations s muts));
    fuzz "fuzz: mutated binary never escapes"
      QCheck.(pair (Test_util.small_trace_arbitrary ()) (QCheck.make mutations_gen))
      (fun (input, muts) ->
        let s = Bytes.to_string (Trace_io.to_bytes (Test_util.trace_of input)) in
        total_binary_decode (Bytes.of_string (apply_mutations s muts)));
  ]

let () =
  Alcotest.run "gc_fault"
    [
      ( "coverage",
        [
          Alcotest.test_case "matrix: every class detected" `Quick
            test_matrix_all_detected;
          Alcotest.test_case "negative control" `Quick
            test_matrix_negative_control;
          Alcotest.test_case "hidden-evict delayed detection" `Quick
            test_hidden_evict_needs_reaccess;
          Alcotest.test_case "arm index respected" `Quick
            test_injector_arm_index;
          Alcotest.test_case "spec grammar" `Quick test_spec_parse;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "sweep survives broken policy" `Quick
            test_sweep_degrades_gracefully;
          Alcotest.test_case "parallel try_map" `Quick test_parallel_try_map;
          Alcotest.test_case "replicates partial" `Quick
            test_replicates_partial;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "text diagnostics" `Quick test_text_diagnostics;
          Alcotest.test_case "text lenient" `Quick test_text_lenient;
          Alcotest.test_case "text lenient truncation" `Quick
            test_text_lenient_truncated;
          Alcotest.test_case "lenient keeps header strict" `Quick
            test_text_lenient_header_still_strict;
          Alcotest.test_case "binary byte offsets" `Quick
            test_binary_byte_offsets;
          Alcotest.test_case "binary varint overflow" `Quick
            test_binary_varint_overflow;
          Alcotest.test_case "binary length bomb" `Quick
            test_binary_length_bomb;
          Alcotest.test_case "binary checksum footer" `Quick
            test_binary_checksum;
          Alcotest.test_case "binary v1 compatibility" `Quick
            test_binary_v1_compat;
          Alcotest.test_case "binary trailing garbage" `Quick
            test_binary_trailing_garbage;
          Alcotest.test_case "binary lenient prefix" `Quick
            test_binary_lenient_prefix;
        ] );
      ("fuzz", fuzz_tests);
    ]
