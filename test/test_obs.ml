(* Tests for the Gc_obs observability layer: JSON encode/decode round
   trips, histogram bucketing, the metric registry, sinks, the standard
   probe on a hand-built event stream, CSV export, and a golden-file check
   of the run manifest. *)

open Gc_obs

let json_testable =
  Alcotest.testable (fun fmt t -> Json.pp fmt t) (fun a b -> a = b)

(* ------------------------------------------------------------------ json *)

let test_json_encoding () =
  let check msg expected v =
    Alcotest.(check string) msg expected (Json.to_string v)
  in
  check "null" "null" Json.Null;
  check "bools" "[true,false]" (Json.Array [ Json.Bool true; Json.Bool false ]);
  check "int" "-42" (Json.Int (-42));
  check "whole float keeps point" "2.0" (Json.Float 2.0);
  check "nan is null" "null" (Json.Float Float.nan);
  check "inf is null" "null" (Json.Float infinity);
  check "escapes" "\"a\\\"b\\\\c\\n\\u0001\"" (Json.String "a\"b\\c\n\x01");
  check "empty obj" "{}" (Json.Obj []);
  check "nested" "{\"xs\":[1,{\"y\":\"z\"}]}"
    (Json.Obj
       [ ("xs", Json.Array [ Json.Int 1; Json.Obj [ ("y", Json.String "z") ] ]) ])

let test_json_parse_roundtrip_basic () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.Float 0.5);
        ("c", Json.String "he\"llo\n");
        ("d", Json.Array [ Json.Null; Json.Bool true; Json.Float 1e300 ]);
        ("e", Json.Obj [ ("nested", Json.Array []) ]);
      ]
  in
  Alcotest.check json_testable "compact round-trips" v
    (Test_util.parse_json (Json.to_string v));
  (* The indented printer must emit the same document. *)
  Alcotest.check json_testable "pretty round-trips" v
    (Test_util.parse_json (Format.asprintf "%a" Json.pp v))

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Int n) small_signed_int;
        map (fun f -> Json.Float f) (float_bound_inclusive 1e6);
        map (fun s -> Json.String s) string_printable;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 1 then scalar
         else
           frequency
             [
               (2, scalar);
               (1, map (fun xs -> Json.Array xs) (list_size (0 -- 4) (self (n / 2))));
               ( 1,
                 map
                   (fun fields -> Json.Obj fields)
                   (list_size (0 -- 4)
                      (pair string_printable (self (n / 2)))) );
             ])

let qcheck_json_roundtrip =
  Test_util.qcheck ~count:500 "random JSON round-trips through the parser"
    (QCheck.make ~print:Json.to_string json_gen)
    (fun v -> Test_util.parse_json (Json.to_string v) = v)

(* ------------------------------------------------------------- histogram *)

let qcheck_histogram_accounting =
  Test_util.qcheck ~count:200 "histogram count/sum/min/max/buckets"
    QCheck.(list (int_bound 100_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.observe h) xs;
      let sorted = List.sort compare xs in
      Histogram.count h = List.length xs
      && Histogram.sum h = List.fold_left ( + ) 0 xs
      && Histogram.min_value h
         = (match sorted with [] -> None | x :: _ -> Some x)
      && Histogram.max_value h
         = (match List.rev sorted with [] -> None | x :: _ -> Some x)
      (* Every value lands in the bucket its bit length names, and bucket
         counts sum back to the observation count. *)
      && List.for_all
           (fun (lo, hi, _) -> lo <= hi)
           (Histogram.buckets h)
      && List.fold_left
           (fun acc (_, _, c) -> acc + c)
           0 (Histogram.buckets h)
         = List.length xs
      && List.for_all
           (fun x ->
             List.exists
               (fun (lo, hi, _) -> lo <= x && x <= hi)
               (Histogram.buckets h))
           xs)

let test_histogram_bucket_edges () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
  Alcotest.(check (list (triple int int int)))
    "bit-length buckets"
    [ (0, 0, 1); (1, 1, 1); (2, 3, 2); (4, 7, 2); (8, 15, 1) ]
    (Histogram.buckets h);
  Alcotest.(check int) "negative clamps to 0" 2
    (Histogram.observe h (-5);
     match Histogram.buckets h with (0, 0, c) :: _ -> c | _ -> -1)

let test_histogram_quantile_and_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.observe a) [ 1; 2; 3 ];
  List.iter (Histogram.observe b) [ 100; 200 ];
  Alcotest.(check (option int)) "empty quantile" None
    (Histogram.quantile (Histogram.create ()) 0.5);
  Alcotest.(check (option int)) "q=0 in first bucket" (Some 1)
    (Histogram.quantile a 0.);
  Alcotest.(check (option int)) "median bucket edge" (Some 3)
    (Histogram.quantile a 0.5);
  Histogram.merge a b;
  Alcotest.(check int) "merged count" 5 (Histogram.count a);
  Alcotest.(check int) "merged sum" 306 (Histogram.sum a);
  Alcotest.(check (option int)) "merged max" (Some 200) (Histogram.max_value a);
  (* The merged upper quantile lives in b's range. *)
  Alcotest.(check bool) "q=1 covers merged tail" true
    (match Histogram.quantile a 1. with Some hi -> hi >= 200 | None -> false)

let test_histogram_interp_quantiles () =
  Alcotest.(check (option (float 0.))) "empty p50" None
    (Histogram.p50 (Histogram.create ()));
  (* Constant data: every quantile is clamped to the single observed
     value, however wide its log bucket. *)
  let c = Histogram.create () in
  for _ = 1 to 100 do
    Histogram.observe c 7
  done;
  List.iter
    (fun q ->
      match Histogram.quantile_interp c q with
      | Some v -> Test_util.check_float ~eps:1e-9 "constant data" 7. v
      | None -> Alcotest.fail "no quantile on a non-empty histogram")
    [ 0.; 0.5; 0.9; 0.99; 1. ];
  (* Uniform 1..1000: interpolation lands near the exact quantile even
     though the top log bucket spans 512..1023. *)
  let u = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.observe u v
  done;
  let get q = Option.get (Histogram.quantile_interp u q) in
  Test_util.check_rel ~rel:0.05 "p50 near 500" 500. (get 0.5);
  Test_util.check_rel ~rel:0.05 "p90 near 900" 900. (get 0.9);
  Test_util.check_rel ~rel:0.05 "p99 near 990" 990. (get 0.99);
  let p50 = Option.get (Histogram.p50 u)
  and p90 = Option.get (Histogram.p90 u)
  and p99 = Option.get (Histogram.p99 u) in
  Alcotest.(check bool) "monotone in q" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "clamped to observed range" true
    (get 0. >= 1. && get 1. <= 1000.)

let test_histogram_json_quantiles () =
  let member name j =
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "histogram snapshot has no %S" name
  in
  (match member "p50" (Histogram.to_json (Histogram.create ())) with
  | Json.Null -> ()
  | j -> Alcotest.failf "empty p50 is not null: %s" (Json.to_string j));
  let h = Histogram.create () in
  for v = 1 to 100 do
    Histogram.observe h v
  done;
  let j = Histogram.to_json h in
  List.iter
    (fun (name, quantile) ->
      Test_util.check_float ~eps:1e-9 name
        (Option.get (quantile h))
        (Json.get_float (member name j)))
    [ ("p50", Histogram.p50); ("p90", Histogram.p90); ("p99", Histogram.p99) ]

(* -------------------------------------------------------------- registry *)

let test_registry_families () =
  let reg = Registry.create () in
  let c1 = Registry.counter reg ~labels:[ ("policy", "lru") ] "misses" in
  let c2 = Registry.counter reg ~labels:[ ("policy", "lru") ] "misses" in
  let c3 = Registry.counter reg ~labels:[ ("policy", "iblp") ] "misses" in
  Registry.incr c1;
  Registry.add c2 10;
  Registry.incr c3;
  Alcotest.(check int) "same (name,labels) is the same counter" 11
    (Registry.counter_value c1);
  Alcotest.(check int) "other label is distinct" 1 (Registry.counter_value c3);
  let g = Registry.gauge reg "occ" in
  Registry.set g 5;
  Registry.change g (-2);
  Alcotest.(check int) "gauge" 3 (Registry.gauge_value g);
  Alcotest.check
    (Alcotest.testable
       (fun fmt -> Format.fprintf fmt "%s")
       (fun a b -> a = b))
    "rows keep registration order"
    "misses misses occ"
    (String.concat " "
       (List.map (fun (name, _, _) -> name) (Registry.rows reg)));
  Alcotest.check_raises "type mismatch raises"
    (Invalid_argument "Registry: metric \"misses\" is a counter, not a histogram")
    (fun () -> ignore (Registry.histogram reg ~labels:[ ("policy", "lru") ] "misses"))

let test_registry_json_roundtrip () =
  let reg = Registry.create () in
  Registry.add (Registry.counter reg "hits") 7;
  Registry.set (Registry.gauge reg ~labels:[ ("layer", "item") ] "occ") 3;
  let h = Registry.histogram reg "widths" in
  List.iter (Histogram.observe h) [ 1; 16; 16 ];
  let encoded = Json.to_string (Registry.to_json reg) in
  let decoded = Test_util.parse_json encoded in
  Alcotest.check json_testable "snapshot survives encode + parse"
    (Registry.to_json reg) decoded;
  (* Spot-check the decoded shape with the accessors. *)
  match Json.get_list decoded with
  | [ hits; occ; widths ] ->
      Alcotest.(check int) "hits value" 7
        (Json.get_int (Option.get (Json.member "value" hits)));
      Alcotest.(check string) "occ label" "item"
        (Json.get_string
           (Option.get
              (Json.member "layer" (Option.get (Json.member "labels" occ)))));
      Alcotest.(check int) "histogram count" 3
        (Json.get_int (Option.get (Json.member "count" widths)))
  | other -> Alcotest.failf "expected 3 records, got %d" (List.length other)

(* ----------------------------------------------------------------- sinks *)

let ev_access index item = Event.Access { index; item }

let test_ring_sink () =
  let ring = Sink.Ring.create ~capacity:3 in
  let s = Sink.Ring.sink ring in
  List.iter (fun i -> s (ev_access i i)) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "length capped" 3 (Sink.Ring.length ring);
  Alcotest.(check int) "total counts drops" 5 (Sink.Ring.total ring);
  Alcotest.(check (list int))
    "keeps the most recent, oldest first" [ 2; 3; 4 ]
    (List.map Event.index (Sink.Ring.contents ring));
  Sink.Ring.clear ring;
  Alcotest.(check int) "cleared" 0 (Sink.Ring.length ring)

let test_count_sink_and_tee () =
  let counts = Sink.Count.create () in
  let ring = Sink.Ring.create ~capacity:10 in
  let s = Sink.tee [ Sink.Count.sink counts; Sink.Ring.sink ring; Sink.null ] in
  s (ev_access 0 7);
  s (Event.Miss { index = 0; item = 7; cold = true; loaded = [ 7 ]; evicted = [] });
  s (Event.Load { index = 0; block = 1; width = 1 });
  s (ev_access 1 7);
  s (Event.Hit { index = 1; item = 7; kind = Event.Temporal; evicted = [] });
  Alcotest.(check int) "total" 5 (Sink.Count.total counts);
  Alcotest.(check int) "accesses" 2 (Sink.Count.get counts "access");
  Alcotest.(check int) "unseen kind is 0" 0 (Sink.Count.get counts "evict");
  Alcotest.(check (list string))
    "by_kind covers every kind in order" Event.kind_names
    (List.map fst (Sink.Count.by_kind counts));
  Alcotest.(check int) "tee delivered to the ring too" 5 (Sink.Ring.length ring)

let test_jsonl_sink () =
  let path = Filename.temp_file "gc_obs_test" ".jsonl" in
  let oc = open_out path in
  let s = Sink.jsonl ~labels:[ ("policy", "lru") ] oc in
  s (ev_access 0 3);
  s (Event.Miss { index = 0; item = 3; cold = true; loaded = [ 3; 4 ]; evicted = [] });
  close_out oc;
  let lines = Test_util.parse_jsonl_file path in
  Sys.remove path;
  match lines with
  | [ access; miss ] ->
      Alcotest.(check string) "label prepended" "lru"
        (Json.get_string (Option.get (Json.member "policy" access)));
      Alcotest.(check string) "discriminator" "access"
        (Json.get_string (Option.get (Json.member "ev" access)));
      Alcotest.(check (list int))
        "loaded list" [ 3; 4 ]
        (List.map Json.get_int
           (Json.get_list (Option.get (Json.member "loaded" miss))))
  | other -> Alcotest.failf "expected 2 lines, got %d" (List.length other)

(* ----------------------------------------------------------------- probe *)

let test_probe_on_synthetic_stream () =
  (* Hand-built stream matching the simulator's emission contract:
       idx 0: cold miss on 1, block load brings {1,2}
       idx 1: spatial hit on 2
       idx 2: cold miss on 3 loads {3}, evicting 1 (resident since idx 0)
       idx 3: warm miss on 1 loads {1}, evicting 2 (resident since idx 0)
     plus one repartition. *)
  let reg = Registry.create () in
  let p = Probe.create reg in
  let s = Probe.sink p in
  List.iter s
    [
      ev_access 0 1;
      Event.Miss { index = 0; item = 1; cold = true; loaded = [ 1; 2 ]; evicted = [] };
      Event.Load { index = 0; block = 0; width = 2 };
      ev_access 1 2;
      Event.Hit { index = 1; item = 2; kind = Event.Spatial; evicted = [] };
      ev_access 2 3;
      Event.Repartition { index = 2; item_budget = 8; block_budget = 8 };
      Event.Miss { index = 2; item = 3; cold = true; loaded = [ 3 ]; evicted = [ 1 ] };
      Event.Load { index = 2; block = 1; width = 1 };
      Event.Evict { index = 2; item = 1 };
      ev_access 3 1;
      Event.Miss { index = 3; item = 1; cold = false; loaded = [ 1 ]; evicted = [ 2 ] };
      Event.Load { index = 3; block = 0; width = 1 };
      Event.Evict { index = 3; item = 2 };
    ];
  let counter name =
    Registry.counter_value (Registry.counter reg name)
  in
  Alcotest.(check int) "spatial hits" 1 (counter "events_hit_spatial");
  Alcotest.(check int) "temporal hits" 0 (counter "events_hit_temporal");
  Alcotest.(check int) "cold misses" 2 (counter "events_miss_cold");
  Alcotest.(check int) "repartitions" 1 (counter "repartitions");
  let hist name = Registry.histogram reg name in
  (* Eviction ages: item 1 lived 0->2, item 2 lived 0->3. *)
  Alcotest.(check int) "eviction_age count" 2 (Histogram.count (hist "eviction_age"));
  Alcotest.(check int) "eviction_age sum" 5 (Histogram.sum (hist "eviction_age"));
  (* Reuse distance: only item 1 was re-requested, at gap 3. *)
  Alcotest.(check int) "reuse count" 1 (Histogram.count (hist "reuse_distance"));
  Alcotest.(check int) "reuse sum" 3 (Histogram.sum (hist "reuse_distance"));
  (* Load widths 2, 1, 1. *)
  Alcotest.(check int) "load_width count" 3 (Histogram.count (hist "load_width"));
  Alcotest.(check int) "load_width sum" 4 (Histogram.sum (hist "load_width"));
  (* Occupancy sampled at each access: 0, 2, 2, 2; final gauge {1,3}. *)
  Alcotest.(check int) "occupancy samples" 4 (Histogram.count (hist "occupancy"));
  Alcotest.(check int) "occupancy sum" 6 (Histogram.sum (hist "occupancy"));
  Alcotest.(check int) "occupancy now" 2
    (Registry.gauge_value (Registry.gauge reg "occupancy_now"))

(* ------------------------------------------------------------------- csv *)

let test_csv_escaping () =
  Alcotest.(check string) "plain passes through" "abc" (Export.csv_field "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Export.csv_field "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Export.csv_field "a\"b");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Export.csv_field "a\nb");
  Alcotest.(check string) "row" "a,\"b,c\",d" (Export.csv_row [ "a"; "b,c"; "d" ]);
  Alcotest.(check string) "header + rows" "h1,h2\nx,y\n"
    (Export.csv ~header:[ "h1"; "h2" ] [ [ "x"; "y" ] ])

let test_registry_csv () =
  let reg = Registry.create () in
  Registry.add (Registry.counter reg ~labels:[ ("policy", "lru") ] "hits") 7;
  let h = Registry.histogram reg "widths" in
  List.iter (Histogram.observe h) [ 2; 4 ];
  let lines = String.split_on_char '\n' (String.trim (Export.registry_csv reg)) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header"
    "name,labels,type,value,count,sum,mean,min,max" (List.hd lines);
  Alcotest.(check string) "counter row" "hits,policy=lru,counter,7,,,,,"
    (List.nth lines 1);
  Alcotest.(check string) "histogram row" "widths,,histogram,,2,6,3,2,4"
    (List.nth lines 2)

(* -------------------------------------------------------------prometheus *)

let prom_fixture () =
  let reg = Registry.create () in
  (* "hits total" exercises name sanitisation; the label value exercises
     escaping. *)
  Registry.add (Registry.counter reg ~labels:[ ("policy", "l\"ru") ] "hits total") 7;
  Registry.set (Registry.gauge reg "occ") 3;
  let h = Registry.histogram reg "widths" in
  List.iter (Histogram.observe h) [ 1; 2; 3 ];
  reg

let prom_expected =
  String.concat "\n"
    [
      "# TYPE hits_total counter";
      "hits_total{policy=\"l\\\"ru\"} 7";
      "# TYPE occ gauge";
      "occ 3";
      "# TYPE widths histogram";
      "widths_bucket{le=\"1\"} 1";
      "widths_bucket{le=\"3\"} 3";
      "widths_bucket{le=\"+Inf\"} 3";
      "widths_sum 6";
      "widths_count 3";
      "";
    ]

let test_prometheus_exposition () =
  Alcotest.(check string) "exposition text" prom_expected
    (Export.prometheus (prom_fixture ()))

let test_prometheus_of_json () =
  let reg = prom_fixture () in
  (* The wire form — a parsed Registry.to_json snapshot, as gcserved's
     stats op serves it — renders the identical text. *)
  (match
     Export.prometheus_of_json
       (Test_util.parse_json (Json.to_string (Registry.to_json reg)))
   with
  | Ok text -> Alcotest.(check string) "same text from snapshot" prom_expected text
  | Error msg -> Alcotest.failf "prometheus_of_json failed: %s" msg);
  match Export.prometheus_of_json (Json.String "not a snapshot") with
  | Error _ -> ()
  | Ok text -> Alcotest.failf "rendered garbage as %S" text

(* ----------------------------------------------------- metrics encoders *)

let simulate_metrics () =
  let trace =
    Gc_trace.Generators.spatial_mix (Gc_trace.Rng.create 7) ~n:5000
      ~universe:1024 ~block_size:8 ~p_spatial:0.6
  in
  let p =
    Gc_cache.Registry.make "iblp" ~k:128 ~blocks:trace.Gc_trace.Trace.blocks
      ~seed:1
  in
  Gc_cache.Simulator.run p trace

let test_metrics_to_row_is_stable_key_value () =
  let m = simulate_metrics () in
  let row = Gc_cache.Metrics.to_row m in
  let pairs = String.split_on_char ' ' row in
  Alcotest.(check (list string))
    "keys in order"
    [
      "accesses"; "hits"; "misses"; "hit_rate"; "spatial_hits";
      "temporal_hits"; "cold_misses"; "items_loaded"; "evictions";
    ]
    (List.map (fun kv -> List.hd (String.split_on_char '=' kv)) pairs);
  List.iter
    (fun kv ->
      match String.split_on_char '=' kv with
      | [ _; v ] ->
          if String.length v = 0 || v.[0] = ' ' then
            Alcotest.failf "padded or empty value in %S" kv
      | _ -> Alcotest.failf "not a key=value pair: %S" kv)
    pairs;
  Alcotest.(check string) "accesses field" "accesses=5000" (List.hd pairs)

let test_metrics_json_matches_fields () =
  let m = simulate_metrics () in
  let decoded = Test_util.parse_json (Json.to_string (Gc_cache.Metrics.to_json m)) in
  List.iter
    (fun (key, v) ->
      Alcotest.(check int)
        key v
        (Json.get_int (Option.get (Json.member key decoded))))
    (Gc_cache.Metrics.fields m);
  Test_util.check_float ~eps:1e-9 "hit_rate"
    (Gc_cache.Metrics.hit_rate m)
    (Json.get_float (Option.get (Json.member "hit_rate" decoded)))

(* -------------------------------------------------------------- manifest *)

(* A fully deterministic manifest: fixed trace, fixed seed, volatile
   fields zeroed.  The golden file pins the schema; the fixture lives in
   Test_util (shared with regen_golden) — after an intentional schema
   change, regenerate with
   [dune exec test/regen_golden.exe -- manifest > test/golden/manifest.json]. *)
let build_golden_manifest = Test_util.build_golden_manifest

let test_manifest_golden () =
  let manifest = Manifest.zero_volatile (build_golden_manifest ()) in
  let rendered =
    Format.asprintf "%a@." Json.pp (Manifest.to_json manifest)
  in
  let golden_path = "golden/manifest.json" in
  let golden =
    let ic = open_in_bin golden_path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  in
  Alcotest.(check string) "manifest matches the golden file" golden rendered

let test_manifest_zero_volatile () =
  let manifest = build_golden_manifest () in
  Alcotest.(check bool) "wall time recorded" true (manifest.Manifest.wall_time_s > 0.);
  let zeroed = Manifest.zero_volatile manifest in
  Alcotest.check json_testable "zeroing is idempotent"
    (Manifest.to_json zeroed)
    (Manifest.to_json (Manifest.zero_volatile zeroed));
  Alcotest.(check (float 0.)) "wall time zeroed" 0. zeroed.Manifest.wall_time_s

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "encoding" `Quick test_json_encoding;
          Alcotest.test_case "parse round-trip" `Quick
            test_json_parse_roundtrip_basic;
          qcheck_json_roundtrip;
        ] );
      ( "histogram",
        [
          qcheck_histogram_accounting;
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "quantile and merge" `Quick
            test_histogram_quantile_and_merge;
          Alcotest.test_case "interpolated quantiles" `Quick
            test_histogram_interp_quantiles;
          Alcotest.test_case "quantiles in json snapshot" `Quick
            test_histogram_json_quantiles;
        ] );
      ( "registry",
        [
          Alcotest.test_case "labeled families" `Quick test_registry_families;
          Alcotest.test_case "json round-trip" `Quick
            test_registry_json_roundtrip;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "ring buffer" `Quick test_ring_sink;
          Alcotest.test_case "count and tee" `Quick test_count_sink_and_tee;
          Alcotest.test_case "jsonl writer" `Quick test_jsonl_sink;
        ] );
      ( "probe",
        [
          Alcotest.test_case "synthetic stream" `Quick
            test_probe_on_synthetic_stream;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "registry export" `Quick test_registry_csv;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition text" `Quick test_prometheus_exposition;
          Alcotest.test_case "from json snapshot" `Quick test_prometheus_of_json;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "to_row stable" `Quick
            test_metrics_to_row_is_stable_key_value;
          Alcotest.test_case "json matches fields" `Quick
            test_metrics_json_matches_fields;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "golden file" `Quick test_manifest_golden;
          Alcotest.test_case "zero_volatile" `Quick test_manifest_zero_volatile;
        ] );
    ]
