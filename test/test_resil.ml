(* The resilience layer under test: Retry's deterministic backoff
   schedule (recorded via an injected sleep, never slept), the Breaker
   state machine over a sliding window, Resilient_client against real
   in-process servers (reconnect across a restart, refused
   classification, breaker fast-fail), and Supervise end-to-end with the
   real ../bin/gcserved.exe child — SIGKILL then a clean drain with
   exactly one restart, and the crash-loop give-up. *)

module Json = Gc_obs.Json
module Rng = Gc_trace.Rng
module Retry = Gc_resil.Retry
module Breaker = Gc_resil.Breaker
module Rc = Gc_resil.Resilient_client
module Supervise = Gc_resil.Supervise
module Fleet = Gc_resil.Fleet
module Pool = Gc_resil.Endpoint_pool
module Server = Gc_serve.Server
module Client = Gc_serve.Client

(* ----------------------------------------------------------------- retry *)

let fixed ?(budget = None) ?(jitter = 0.) ?(max_attempts = 6) () =
  { Retry.max_attempts; base_delay = 0.1; max_delay = 0.4; jitter; budget }

(* Run [Retry.run] with a recording sleep; returns (result, sleeps). *)
let record_run ?policy ~seed ~retryable f =
  let sleeps = ref [] in
  let sleep d = sleeps := d :: !sleeps in
  let r = Retry.run ?policy ~sleep ~rng:(Rng.create seed) ~retryable f in
  (r, List.rev !sleeps)

let test_retry_caps_and_doubles () =
  let r, sleeps =
    record_run ~policy:(fixed ()) ~seed:1
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ -> Error "down")
  in
  (match r with
  | Error { Retry.attempts = 6; last_error = "down"; budget_spent = false } ->
      ()
  | Error g -> Alcotest.failf "gave up after %d attempts" g.Retry.attempts
  | Ok _ -> Alcotest.fail "succeeded out of thin air");
  Alcotest.(check (list (float 1e-9)))
    "doubling, capped at max_delay"
    [ 0.1; 0.2; 0.4; 0.4; 0.4 ]
    sleeps

let test_retry_jitter_deterministic () =
  let go () =
    record_run ~policy:(fixed ~jitter:0.25 ()) ~seed:42
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ -> Error "down")
  in
  let _, first = go () in
  let _, again = go () in
  Alcotest.(check (list (float 1e-12))) "same seed, same schedule" first again;
  List.iteri
    (fun i d ->
      let full = Float.min 0.4 (0.1 *. Float.pow 2. (float_of_int i)) in
      Alcotest.(check bool)
        (Printf.sprintf "sleep %d within [0.75, 1] of %g" i full)
        true
        (d >= (0.75 *. full) -. 1e-9 && d <= full +. 1e-9))
    first

let test_retry_stops_on_success () =
  let calls = ref 0 in
  let r, sleeps =
    record_run ~policy:(fixed ()) ~seed:7
      ~retryable:(fun _ -> true)
      (fun ~attempt ->
        incr calls;
        if attempt < 3 then Error "flaky" else Ok attempt)
  in
  Alcotest.(check int) "succeeded on attempt 3" 3 (match r with Ok a -> a | Error _ -> -1);
  Alcotest.(check int) "three calls" 3 !calls;
  Alcotest.(check int) "two sleeps" 2 (List.length sleeps)

let test_retry_respects_classification () =
  let calls = ref 0 in
  let r, sleeps =
    record_run ~policy:(fixed ()) ~seed:7
      ~retryable:(fun e -> e <> "fatal")
      (fun ~attempt:_ ->
        incr calls;
        Error "fatal")
  in
  (match r with
  | Error { Retry.attempts = 1; last_error = "fatal"; _ } -> ()
  | _ -> Alcotest.fail "a non-retryable error must be final");
  Alcotest.(check int) "one call, no sleeps" 1 !calls;
  Alcotest.(check (list (float 0.))) "no sleeps" [] sleeps

let test_retry_budget_stops_the_session () =
  (* Real sleeps, tiny values: the 0.1s budget must cut a 100-attempt
     policy down to a handful. *)
  let policy =
    {
      Retry.max_attempts = 100;
      base_delay = 0.02;
      max_delay = 0.02;
      jitter = 0.;
      budget = Some 0.1;
    }
  in
  let r =
    Retry.run ~policy ~rng:(Rng.create 1)
      ~retryable:(fun _ -> true)
      (fun ~attempt:_ -> Error "down")
  in
  match r with
  | Error g ->
      Alcotest.(check bool) "budget stopped it" true g.Retry.budget_spent;
      Alcotest.(check bool)
        (Printf.sprintf "well under max_attempts (%d)" g.Retry.attempts)
        true (g.Retry.attempts < 20)
  | Ok _ -> Alcotest.fail "succeeded out of thin air"

(* --------------------------------------------------------------- breaker *)

let tripping_config =
  { Breaker.window = 4; min_samples = 4; failure_threshold = 0.5; cooldown = 30. }

let trip b =
  (* Two of four outcomes failing meets the 0.5 threshold exactly. *)
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:false

let test_breaker_trips_on_rate () =
  let b = Breaker.create ~config:tripping_config () in
  Alcotest.(check bool) "closed allows" true (Breaker.allow b);
  trip b;
  Alcotest.(check string) "open" "open" (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "open refuses" false (Breaker.allow b)

let test_breaker_needs_min_samples () =
  let b =
    Breaker.create
      ~config:{ tripping_config with Breaker.window = 10; min_samples = 5 }
      ()
  in
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  Alcotest.(check string)
    "two failures alone cannot trip it" "closed"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "still allows" true (Breaker.allow b)

let test_breaker_half_open_probe () =
  let b =
    Breaker.create ~config:{ tripping_config with Breaker.cooldown = 0.05 } ()
  in
  trip b;
  Alcotest.(check bool) "open refuses" false (Breaker.allow b);
  Gc_exec.Pool.nap 0.08;
  Alcotest.(check bool) "cooldown elapses: one probe" true (Breaker.allow b);
  Alcotest.(check bool) "second concurrent probe refused" false (Breaker.allow b);
  Breaker.record b ~ok:true;
  Alcotest.(check string)
    "probe success closes" "closed"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "closed again" true (Breaker.allow b)

let test_breaker_half_open_failure_reopens () =
  let b =
    Breaker.create ~config:{ tripping_config with Breaker.cooldown = 0.05 } ()
  in
  trip b;
  Gc_exec.Pool.nap 0.08;
  Alcotest.(check bool) "probe allowed" true (Breaker.allow b);
  Breaker.record b ~ok:false;
  Alcotest.(check string)
    "probe failure reopens" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "refusing again" false (Breaker.allow b)

let test_breaker_half_open_race () =
  (* The half-open probe slot under real contention: eight threads
     released together against a cooled-down breaker, and the slot must
     admit exactly one of them. *)
  let b =
    Breaker.create ~config:{ tripping_config with Breaker.cooldown = 0.05 } ()
  in
  trip b;
  Gc_exec.Pool.nap 0.08;
  let go = Atomic.make false in
  let granted = Atomic.make 0 in
  let threads =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            while not (Atomic.get go) do
              Thread.yield ()
            done;
            if Breaker.allow b then Atomic.incr granted)
          ())
  in
  Atomic.set go true;
  List.iter Thread.join threads;
  Alcotest.(check int) "exactly one probe admitted" 1 (Atomic.get granted);
  Alcotest.(check string)
    "still half-open until the probe reports" "half-open"
    (Breaker.state_name (Breaker.state b));
  Breaker.record b ~ok:true;
  Alcotest.(check string)
    "probe success closes" "closed"
    (Breaker.state_name (Breaker.state b))

let test_breaker_gauge () =
  let reg = Gc_obs.Registry.create () in
  let b = Breaker.create ~config:tripping_config ~registry:reg ~name:"dep" () in
  let gauge () =
    match Gc_obs.Registry.to_json reg with
    | Json.Array rows -> (
        let hit = function
          | Json.Obj fields ->
              List.assoc_opt "name" fields = Some (Json.String "breaker_state")
          | _ -> false
        in
        match List.find_opt hit rows with
        | Some (Json.Obj fields) -> List.assoc_opt "value" fields
        | _ -> None)
    | _ -> None
  in
  Alcotest.(check bool) "closed = 0" true (gauge () = Some (Json.Int 0));
  trip b;
  Alcotest.(check bool) "open = 2" true (gauge () = Some (Json.Int 2))

(* ------------------------------------------------------ resilient client *)

let sock_seq = ref 0

let fresh_sock () =
  incr sock_seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "gcresil-%d-%d.sock" (Unix.getpid ()) !sock_seq)

let tiny_server path =
  Server.create
    { Server.default_config with Server.socket_path = Some path; workers = 1 }

let health = Json.Obj [ ("op", Json.String "health") ]

let fast_retry =
  { Retry.default with Retry.max_attempts = 2; base_delay = 0.01; max_delay = 0.02 }

let test_rc_round_trip () =
  let path = fresh_sock () in
  let t = tiny_server path in
  Fun.protect
    ~finally:(fun () -> Server.drain t)
    (fun () ->
      let rc = Rc.create ~timeout:5. (Client.Unix_path path) in
      (match Rc.request rc health with
      | Ok reply -> (
          match Gc_serve.Protocol.reply_of_json reply with
          | Ok (_, Gc_serve.Protocol.Ok_result _) -> ()
          | Ok (_, Gc_serve.Protocol.Err (k, m)) ->
              Alcotest.failf "error reply %s: %s" k m
          | Error m -> Alcotest.failf "malformed reply: %s" m)
      | Error f -> Alcotest.failf "request failed: %s" (Rc.string_of_failure f));
      Alcotest.(check int) "no retries on a healthy server" 0 (Rc.retries rc);
      Alcotest.(check int) "no reconnects" 0 (Rc.reconnects rc);
      Rc.close rc)

let test_rc_reconnects_across_restart () =
  let path = fresh_sock () in
  let rc = Rc.create ~timeout:5. (Client.Unix_path path) in
  let t1 = tiny_server path in
  (match Rc.request rc health with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "first request: %s" (Rc.string_of_failure f));
  Server.drain t1;
  (* Same path, new incarnation: the cached connection is now dead and
     the client must ride the reset without surfacing it. *)
  let t2 = tiny_server path in
  Fun.protect
    ~finally:(fun () -> Server.drain t2)
    (fun () ->
      (match Rc.request rc health with
      | Ok _ -> ()
      | Error f ->
          Alcotest.failf "post-restart request: %s" (Rc.string_of_failure f));
      Alcotest.(check bool)
        (Printf.sprintf "reconnected (%d)" (Rc.reconnects rc))
        true
        (Rc.reconnects rc >= 1);
      Rc.close rc)

let test_rc_refused_is_classified () =
  let rc = Rc.create ~retry:fast_retry (Client.Unix_path (fresh_sock ())) in
  (match Rc.request rc health with
  | Error (Rc.Transport ({ Client.kind = Client.Refused; _ }, attempts)) ->
      Alcotest.(check int) "spent the whole policy" 2 attempts
  | Error f -> Alcotest.failf "wrong failure: %s" (Rc.string_of_failure f)
  | Ok _ -> Alcotest.fail "nothing was listening");
  Rc.close rc

let test_rc_non_idempotent_single_shot () =
  let rc = Rc.create ~retry:fast_retry (Client.Unix_path (fresh_sock ())) in
  (match Rc.request ~idempotent:false rc health with
  | Error (Rc.Transport (_, attempts)) ->
      Alcotest.(check int) "exactly one attempt" 1 attempts
  | Error f -> Alcotest.failf "wrong failure: %s" (Rc.string_of_failure f)
  | Ok _ -> Alcotest.fail "nothing was listening");
  Rc.close rc

let test_rc_breaker_fast_fails () =
  let breaker =
    Breaker.create
      ~config:
        { Breaker.window = 2; min_samples = 2; failure_threshold = 0.5;
          cooldown = 60. }
      ()
  in
  let rc =
    Rc.create ~retry:fast_retry ~breaker (Client.Unix_path (fresh_sock ()))
  in
  (* The two failing attempts of this one request trip the breaker. *)
  (match Rc.request rc health with
  | Error (Rc.Transport _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Rc.string_of_failure f)
  | Ok _ -> Alcotest.fail "nothing was listening");
  Alcotest.(check string)
    "tripped" "open"
    (Breaker.state_name (Breaker.state breaker));
  (match Rc.request rc health with
  | Error Rc.Open_circuit -> ()
  | Error f -> Alcotest.failf "expected Open_circuit, got %s" (Rc.string_of_failure f)
  | Ok _ -> Alcotest.fail "breaker let a call through");
  Rc.close rc

(* -------------------------------------------------------------- supervise *)

let gcserved = "../bin/gcserved.exe"

type watch = {
  mu : Mutex.t;
  mutable events : Supervise.event list;
  mutable pid : int option;
  mutable healthy : int;
}

let watch_create () =
  { mu = Mutex.create (); events = []; pid = None; healthy = 0 }

let watch_event w ev =
  Mutex.lock w.mu;
  w.events <- ev :: w.events;
  (match ev with
  | Supervise.Spawned pid -> w.pid <- Some pid
  | Supervise.Became_healthy _ -> w.healthy <- w.healthy + 1
  | _ -> ());
  Mutex.unlock w.mu

let await ?(timeout = 20.) ~what pred =
  let give_up = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > give_up then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let supervise_config ~path ~seed =
  {
    (Supervise.default_config
       ~argv:[| gcserved; "serve"; "--socket"; path; "--workers"; "1" |]
       ~health_addr:(Client.Unix_path path))
    with
    Supervise.health_interval = 0.05;
    backoff =
      { Retry.default with Retry.base_delay = 0.02; max_delay = 0.05 };
    seed;
  }

let test_supervise_restarts_after_kill () =
  let path = fresh_sock () in
  let w = watch_create () in
  let stop = Gc_exec.Cancel.create () in
  let outcome = ref None in
  let th =
    Thread.create
      (fun () ->
        outcome :=
          Some (Supervise.run ~on_event:(watch_event w) ~stop
                  (supervise_config ~path ~seed:1)))
      ()
  in
  await ~what:"first healthy child" (fun () -> w.healthy >= 1);
  (match w.pid with
  | Some pid -> Unix.kill pid Sys.sigkill
  | None -> Alcotest.fail "no child pid");
  await ~what:"restarted child healthy" (fun () -> w.healthy >= 2);
  Gc_exec.Cancel.request stop ~reason:"test over";
  Thread.join th;
  (match !outcome with
  | Some { Supervise.result = `Drained; restarts = 1 } -> ()
  | Some { Supervise.result = `Drained; restarts } ->
      Alcotest.failf "drained with %d restarts, wanted 1" restarts
  | Some { Supervise.result = `Gave_up; _ } -> Alcotest.fail "gave up"
  | None -> Alcotest.fail "no outcome");
  Alcotest.(check bool) "socket gone after drain" false (Sys.file_exists path)

let test_supervise_gives_up_on_crash_loop () =
  (* A socket path whose directory does not exist: every incarnation
     dies at bind, and the sliding-window budget must stop the flapping
     at exactly max_restarts. *)
  let path = "/nonexistent-gcresil-dir/deep/s.sock" in
  let w = watch_create () in
  let stop = Gc_exec.Cancel.create () in
  let config =
    { (supervise_config ~path ~seed:2) with Supervise.max_restarts = 2 }
  in
  let outcome = Supervise.run ~on_event:(watch_event w) ~stop config in
  (match outcome with
  | { Supervise.result = `Gave_up; restarts = 2 } -> ()
  | { Supervise.result = `Gave_up; restarts } ->
      Alcotest.failf "gave up after %d restarts, wanted 2" restarts
  | { Supervise.result = `Drained; _ } ->
      Alcotest.fail "drained a server that can never bind");
  let gave_up =
    List.exists
      (function Supervise.Gave_up _ -> true | _ -> false)
      w.events
  in
  Alcotest.(check bool) "emitted Gave_up" true gave_up

let test_supervise_clears_stale_socket () =
  (* Leave a dead socket file behind, as a SIGKILLed child would: the
     pre-spawn probe must remove it so the child wins the bind. *)
  let path = fresh_sock () in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 1;
  Unix.close listener;
  Alcotest.(check bool) "stale file present" true (Sys.file_exists path);
  let w = watch_create () in
  let stop = Gc_exec.Cancel.create () in
  let outcome = ref None in
  let th =
    Thread.create
      (fun () ->
        outcome :=
          Some (Supervise.run ~on_event:(watch_event w) ~stop
                  (supervise_config ~path ~seed:3)))
      ()
  in
  await ~what:"child healthy despite the stale socket" (fun () ->
      w.healthy >= 1);
  Gc_exec.Cancel.request stop ~reason:"test over";
  Thread.join th;
  match !outcome with
  | Some { Supervise.result = `Drained; restarts = 0 } -> ()
  | _ -> Alcotest.fail "expected a clean drain with no restarts"

(* ---------------------------------------------------------- endpoint pool *)

let pool_config =
  {
    Pool.default_config with
    Pool.p2c = false;
    reprobe_after = 0.05;
    reprobe_max = 0.2;
  }

let pool_addrs n =
  List.init n (fun i ->
      Client.Unix_path (Printf.sprintf "gcpool-test.%d.sock" i))

let test_pool_state_machine () =
  let p = Pool.create ~config:pool_config ~seed:1 (pool_addrs 2) in
  Alcotest.(check string) "starts up" "up" (Pool.state_name (Pool.state p 0));
  Pool.note_failure p 0;
  Alcotest.(check string)
    "one failure: suspect" "suspect"
    (Pool.state_name (Pool.state p 0));
  Pool.note_failure p 0;
  Pool.note_failure p 0;
  Alcotest.(check string)
    "three failures: down" "down"
    (Pool.state_name (Pool.state p 0));
  Alcotest.(check string)
    "the peer is untouched" "up"
    (Pool.state_name (Pool.state p 1));
  Pool.note_probe p 0 ~ok:true;
  Alcotest.(check string)
    "probe success restores up" "up"
    (Pool.state_name (Pool.state p 0))

let test_pool_rotation_deterministic () =
  let p = Pool.create ~config:pool_config ~seed:1 (pool_addrs 3) in
  Alcotest.(check (list int))
    "round robin over the up tier"
    [ 0; 1; 2; 0; 1; 2 ]
    (List.init 6 (fun _ -> Pool.pick p));
  Alcotest.(check int) "avoid skips within the tier" 1 (Pool.pick ~avoid:[ 0; 2 ] p);
  Alcotest.(check int)
    "avoid covering everything is ignored" 0
    (Pool.pick ~avoid:[ 0; 1; 2 ] p)

let test_pool_routes_around_down () =
  let p = Pool.create ~config:pool_config ~seed:1 (pool_addrs 2) in
  for _ = 1 to 3 do
    Pool.note_failure p 0
  done;
  Alcotest.(check (list int))
    "only the healthy replica is picked"
    [ 1; 1; 1; 1 ]
    (List.init 4 (fun _ -> Pool.pick p));
  Gc_exec.Pool.nap 0.1;
  Alcotest.(check (list int)) "re-probe due after the deadline" [ 0 ]
    (Pool.due_probes p);
  Pool.note_probe p 0 ~ok:false;
  Alcotest.(check (list int))
    "a failed probe re-parks it" []
    (Pool.due_probes p);
  Gc_exec.Pool.nap 0.15;
  Alcotest.(check (list int))
    "due again after backoff" [ 0 ]
    (Pool.due_probes p);
  Pool.note_probe p 0 ~ok:true;
  Alcotest.(check string)
    "recovered" "up"
    (Pool.state_name (Pool.state p 0))

let test_pool_p2c_prefers_faster () =
  let p =
    Pool.create
      ~config:{ pool_config with Pool.p2c = true }
      ~seed:1 (pool_addrs 2)
  in
  (* Until both endpoints have a latency sample, p2c cannot engage. *)
  Pool.note_ok p 0 ~latency_s:0.5;
  Pool.note_ok p 1 ~latency_s:0.01;
  for _ = 1 to 8 do
    Alcotest.(check int) "always the faster replica" 1 (Pool.pick p)
  done;
  Alcotest.(check bool)
    "quantile sees both samples" true
    (Pool.latency_quantile p 1.0 = Some 0.5
    && Pool.latency_quantile p 0.0 = Some 0.01)

(* ---------------------------------------------------------- multi client *)

let test_multi_failover_to_live_replica () =
  let dead = fresh_sock () in
  let live = fresh_sock () in
  let t = tiny_server live in
  Fun.protect
    ~finally:(fun () -> Server.drain t)
    (fun () ->
      let mc =
        Rc.Multi.create ~timeout:5. ~retry:fast_retry ~pool_config
          [ Client.Unix_path dead; Client.Unix_path live ]
      in
      (* Rotation makes the dead endpoint the primary of the first
         request; the refused dial must fail over within the attempt. *)
      (match Rc.Multi.request mc health with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "request failed: %s" (Rc.string_of_failure f));
      Alcotest.(check bool)
        (Printf.sprintf "failed over (%d)" (Rc.Multi.failovers mc))
        true
        (Rc.Multi.failovers mc >= 1);
      Alcotest.(check int) "hedging is off by default" 0 (Rc.Multi.hedges mc);
      Alcotest.(check string)
        "the dead replica is marked" "suspect"
        (Pool.state_name (Pool.state (Rc.Multi.pool mc) 0));
      Rc.Multi.close mc)

let test_multi_hedge_second_replica_wins () =
  (* A blackhole primary: bound and listening but never accepting, so
     the dial and send succeed and the reply never comes.  The hedge
     fires at the live replica and its reply must win. *)
  let hole_path = fresh_sock () in
  let hole = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind hole (Unix.ADDR_UNIX hole_path);
  Unix.listen hole 1;
  let live = fresh_sock () in
  let t = tiny_server live in
  Fun.protect
    ~finally:(fun () ->
      Server.drain t;
      Unix.close hole)
    (fun () ->
      let mc =
        Rc.Multi.create ~timeout:5. ~retry:fast_retry ~pool_config
          ~hedge:
            {
              Rc.Multi.default_hedge with
              min_delay = 0.05;
              max_delay = 0.05;
              initial_delay = 0.05;
            }
          [ Client.Unix_path hole_path; Client.Unix_path live ]
      in
      (match Rc.Multi.request mc health with
      | Ok _ -> ()
      | Error f ->
          Alcotest.failf "hedged request failed: %s" (Rc.string_of_failure f));
      Alcotest.(check int) "one hedge fired" 1 (Rc.Multi.hedges mc);
      Alcotest.(check int) "the hedge won" 1 (Rc.Multi.hedge_wins mc);
      Rc.Multi.close mc)

(* ----------------------------------------------------------------- fleet *)

let test_fleet_socket_naming () =
  Alcotest.(check string)
    "BASE.I" "gcserved.sock.2"
    (Fleet.replica_socket ~base:"gcserved.sock" 2)

let run_fleet ~ws ~stop configs =
  let outcome = ref None in
  let th =
    Thread.create
      (fun () ->
        outcome :=
          Some
            (Fleet.run
               ~on_event:(fun ~replica ev -> watch_event ws.(replica) ev)
               ~stop configs))
      ()
  in
  (th, outcome)

let test_fleet_isolates_restarts () =
  let base = fresh_sock () in
  let ws = Array.init 2 (fun _ -> watch_create ()) in
  let stop = Gc_exec.Cancel.create () in
  let configs =
    Array.init 2 (fun i ->
        supervise_config ~path:(Fleet.replica_socket ~base i) ~seed:(10 + i))
  in
  let th, outcome = run_fleet ~ws ~stop configs in
  await ~what:"both replicas healthy" (fun () ->
      ws.(0).healthy >= 1 && ws.(1).healthy >= 1);
  (match ws.(0).pid with
  | Some pid -> Unix.kill pid Sys.sigkill
  | None -> Alcotest.fail "no pid for replica 0");
  await ~what:"replica 0 restarted" (fun () -> ws.(0).healthy >= 2);
  Gc_exec.Cancel.request stop ~reason:"test over";
  Thread.join th;
  match !outcome with
  | Some { Fleet.result = `Drained; replicas } ->
      Alcotest.(check int)
        "replica 0 restarted once" 1
        replicas.(0).Supervise.restarts;
      Alcotest.(check int)
        "replica 1 untouched" 0
        replicas.(1).Supervise.restarts
  | Some { Fleet.result = `All_gave_up; _ } -> Alcotest.fail "fleet gave up"
  | None -> Alcotest.fail "no outcome"

let test_fleet_bulkhead () =
  (* One replica can never bind; its budget is the bulkhead.  It must
     go dark alone while its sibling keeps answering, and the fleet as
     a whole still drains. *)
  let good = fresh_sock () in
  let bad = "/nonexistent-gcresil-dir/deep/fleet.sock" in
  let ws = Array.init 2 (fun _ -> watch_create ()) in
  let stop = Gc_exec.Cancel.create () in
  let configs =
    [|
      { (supervise_config ~path:bad ~seed:20) with Supervise.max_restarts = 2 };
      supervise_config ~path:good ~seed:21;
    |]
  in
  let th, outcome = run_fleet ~ws ~stop configs in
  await ~what:"the good replica healthy" (fun () -> ws.(1).healthy >= 1);
  await ~what:"the bad replica giving up" (fun () ->
      Mutex.lock ws.(0).mu;
      let gave =
        List.exists
          (function Supervise.Gave_up _ -> true | _ -> false)
          ws.(0).events
      in
      Mutex.unlock ws.(0).mu;
      gave);
  let rc = Rc.create ~timeout:5. (Client.Unix_path good) in
  (match Rc.request rc health with
  | Ok _ -> ()
  | Error f ->
      Alcotest.failf "surviving replica refused: %s" (Rc.string_of_failure f));
  Rc.close rc;
  Gc_exec.Cancel.request stop ~reason:"test over";
  Thread.join th;
  match !outcome with
  | Some { Fleet.result = `Drained; replicas } -> (
      (match replicas.(0).Supervise.result with
      | `Gave_up -> ()
      | `Drained -> Alcotest.fail "the bad replica cannot have drained");
      match replicas.(1).Supervise.result with
      | `Drained -> ()
      | `Gave_up -> Alcotest.fail "the good replica gave up")
  | Some { Fleet.result = `All_gave_up; _ } ->
      Alcotest.fail "one live replica must keep the fleet Drained"
  | None -> Alcotest.fail "no outcome"

(* ---------------------------------------------------------------- suite *)

let () =
  Alcotest.run "gc_resil"
    [
      ( "retry",
        [
          Alcotest.test_case "caps and doubles" `Quick test_retry_caps_and_doubles;
          Alcotest.test_case "jitter is deterministic" `Quick
            test_retry_jitter_deterministic;
          Alcotest.test_case "stops on success" `Quick test_retry_stops_on_success;
          Alcotest.test_case "respects classification" `Quick
            test_retry_respects_classification;
          Alcotest.test_case "budget bounds the session" `Quick
            test_retry_budget_stops_the_session;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips on failure rate" `Quick test_breaker_trips_on_rate;
          Alcotest.test_case "needs min samples" `Quick test_breaker_needs_min_samples;
          Alcotest.test_case "half-open single probe" `Quick
            test_breaker_half_open_probe;
          Alcotest.test_case "half-open failure reopens" `Quick
            test_breaker_half_open_failure_reopens;
          Alcotest.test_case "half-open race admits one" `Quick
            test_breaker_half_open_race;
          Alcotest.test_case "state gauge" `Quick test_breaker_gauge;
        ] );
      ( "endpoint-pool",
        [
          Alcotest.test_case "state machine" `Quick test_pool_state_machine;
          Alcotest.test_case "rotation is deterministic" `Quick
            test_pool_rotation_deterministic;
          Alcotest.test_case "routes around a down replica" `Quick
            test_pool_routes_around_down;
          Alcotest.test_case "p2c prefers the faster replica" `Quick
            test_pool_p2c_prefers_faster;
        ] );
      ( "resilient-client",
        [
          Alcotest.test_case "round trip" `Quick test_rc_round_trip;
          Alcotest.test_case "reconnects across a restart" `Quick
            test_rc_reconnects_across_restart;
          Alcotest.test_case "refused is classified" `Quick
            test_rc_refused_is_classified;
          Alcotest.test_case "non-idempotent is single-shot" `Quick
            test_rc_non_idempotent_single_shot;
          Alcotest.test_case "breaker fast-fails" `Quick test_rc_breaker_fast_fails;
        ] );
      ( "multi",
        [
          Alcotest.test_case "failover to a live replica" `Quick
            test_multi_failover_to_live_replica;
          Alcotest.test_case "hedge: second replica wins" `Quick
            test_multi_hedge_second_replica_wins;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "socket naming" `Quick test_fleet_socket_naming;
          Alcotest.test_case "restarts stay with the killed replica" `Quick
            test_fleet_isolates_restarts;
          Alcotest.test_case "bulkhead: one gives up, the fleet drains" `Quick
            test_fleet_bulkhead;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "restart after SIGKILL" `Quick
            test_supervise_restarts_after_kill;
          Alcotest.test_case "crash loop gives up" `Quick
            test_supervise_gives_up_on_crash_loop;
          Alcotest.test_case "clears a stale socket" `Quick
            test_supervise_clears_stale_socket;
        ] );
    ]
