examples/model_tour.mli:
