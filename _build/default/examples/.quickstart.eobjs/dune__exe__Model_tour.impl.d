examples/model_tour.ml: Adversary Attack Block_lru Block_map Format Gc_bounds Gc_cache Gc_locality Gc_offline Gc_trace Generators Iblp List Lru Metrics Policy Printf Rng Simulator String Trace
