examples/quickstart.ml: Format Gc_bounds Gc_cache Gc_offline Gc_trace Generators List Metrics Registry Rng Simulator Stats Trace
