examples/adversarial.ml: Adversary Attack Block_map Format Gc_bounds Gc_cache Gc_offline Gc_trace Iblp List Param_a Printf Registry
