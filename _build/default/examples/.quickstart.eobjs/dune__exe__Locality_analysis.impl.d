examples/locality_analysis.ml: Concave_fit Format Gc_bounds Gc_cache Gc_locality Gc_trace List Rng Synthesis Trace Working_set
