examples/adaptive_split.mli:
