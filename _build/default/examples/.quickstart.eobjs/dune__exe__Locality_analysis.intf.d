examples/locality_analysis.mli:
