examples/adaptive_split.ml: Format Gc_cache Gc_trace Generators List Metrics Registry Rng Simulator Trace
