examples/dram_cache.mli:
