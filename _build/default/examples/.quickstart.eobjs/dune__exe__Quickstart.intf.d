examples/quickstart.mli:
