examples/dram_cache.ml: Array Format Gc_cache Gc_memhier Gc_trace Geometry Hierarchy List Workloads Writeback
