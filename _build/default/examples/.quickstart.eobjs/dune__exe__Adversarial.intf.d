examples/adversarial.mli:
