(* Quickstart: simulate granularity-change caching policies on a synthetic
   workload and compare them against the offline baselines.

   Run with:  dune exec examples/quickstart.exe *)

open Gc_trace
open Gc_cache

let () =
  let seed = 42 in
  let block_size = 16 in
  let k = 1024 in

  (* A workload with tunable spatial locality: 70% of accesses stay within
     the current block (think: fields of the same record, neighbouring
     array cells), the rest jump uniformly. *)
  let rng = Rng.create seed in
  let trace =
    Generators.spatial_mix rng ~n:200_000 ~universe:16_384 ~block_size
      ~p_spatial:0.7
  in
  Format.printf "workload: %a@." Trace.pp trace;
  Format.printf "whole-trace spatial ratio f/g = %.2f (max possible %d)@.@."
    (Stats.spatial_ratio trace) block_size;

  (* Run every registered policy at the same capacity. *)
  Format.printf "%-12s %10s %10s %10s %10s@." "policy" "misses" "hit rate"
    "spatial" "temporal";
  List.iter
    (fun spec ->
      let policy = spec.Registry.make ~k ~blocks:trace.Trace.blocks ~seed in
      let m = Simulator.run policy trace in
      Format.printf "%-12s %10d %9.4f%% %10d %10d@." spec.Registry.name
        m.Metrics.misses
        (100. *. Metrics.hit_rate m)
        m.Metrics.spatial_hits m.Metrics.temporal_hits)
    Registry.all;

  (* Offline references: what a clairvoyant cache could have done. *)
  Format.printf "@.%-12s %10d   (optimal item-granularity cache)@." "belady"
    (Gc_offline.Belady.cost ~k trace);
  Format.printf "%-12s %10d   (optimal block-granularity cache)@."
    "block-belady"
    (Gc_offline.Block_belady.cost ~k trace);
  Format.printf "%-12s %10d   (GC-aware clairvoyant heuristic)@." "clairvoyant"
    (Gc_offline.Clairvoyant.cost ~k trace);

  (* What does the theory say? IBLP's competitive ratio against an offline
     cache 8x smaller, at the optimal layer split: *)
  let h = float_of_int (k / 8) in
  let kf = float_of_int k and bb = float_of_int block_size in
  Format.printf "@.theory: optimal IBLP split for k=%d vs h=%.0f: i = %.0f@." k
    h
    (Gc_bounds.Partitioning.optimal_i ~k:kf ~h ~block_size:bb);
  Format.printf "        competitive ratio bound %.2f (GC lower bound %.2f)@."
    (Gc_bounds.Partitioning.optimal_ratio ~k:kf ~h ~block_size:bb)
    (Gc_bounds.Lower_bounds.best ~k:kf ~h ~block_size:bb)
