(* A guided tour of the Granularity-Change Caching model, following the
   paper section by section with tiny runnable instances.

   Run with:  dune exec examples/model_tour.exe *)

open Gc_trace
open Gc_cache

let heading title = Format.printf "@.--- %s ---@." title

let () =
  (* Section 2: the model.  Items 1,2,3 form block A; a miss may load any
     subset of A containing the request, for one unit cost. *)
  heading "The model (Definition 1, Figure 1)";
  let blocks = Block_map.of_blocks [ [| 1; 2; 3 |] ] in
  let trace = Trace.of_list blocks [ 1; 2 ] in
  let clairvoyant = Gc_offline.Clairvoyant.create ~k:2 trace in
  ignore
    (Simulator.run_with
       ~f:(fun pos item outcome ->
         match outcome with
         | Policy.Miss { loaded; _ } ->
             Format.printf
               "access %d (item A%d): miss; load subset {%s} - 1 unit cost@."
               pos item
               (String.concat ", "
                  (List.map (Printf.sprintf "A%d") (List.sort compare loaded)))
         | Policy.Hit _ ->
             Format.printf "access %d (item A%d): spatial hit, free@." pos item)
       clairvoyant trace);

  (* Temporal vs spatial hits (Section 2). *)
  heading "Temporal vs spatial locality";
  let blocks = Block_map.uniform ~block_size:4 in
  let t = Trace.of_list blocks [ 0; 1; 0; 2; 0 ] in
  let m = Simulator.run (Iblp.create ~i:2 ~b:8 ~blocks ()) t in
  Format.printf
    "trace 0 1 0 2 0 under IBLP: %d misses, %d spatial hits (first touches@.\
     of 1 and 2 after the block load), %d temporal hits (re-uses of 0)@."
    m.Metrics.misses m.Metrics.spatial_hits m.Metrics.temporal_hits;

  (* Section 3: NP-completeness via the reduction. *)
  heading "Offline GC caching is NP-complete (Theorem 1)";
  let inst =
    { Gc_offline.Varsize.sizes = [| 2; 1 |]; capacity = 2; requests = [| 0; 1; 0 |] }
  in
  let reduced = Gc_offline.Reduction.reduce inst in
  Format.printf
    "variable-size instance (sizes 2,1; capacity 2; trace A B A) reduces to@.\
     a GC trace of %d accesses over %d items;@."
    (Trace.length reduced.Gc_offline.Reduction.trace)
    (Trace.distinct_items reduced.Gc_offline.Reduction.trace);
  (match Gc_offline.Reduction.verify inst with
  | Ok (a, b) -> Format.printf "both optima = %d = %d (exact solvers agree)@." a b
  | Error e -> Format.printf "unexpected: %s@." e);

  (* Section 4: the lower bound, live. *)
  heading "Spatial locality breaks Item Caches (Theorem 2)";
  let k = 64 and h = 16 and block_size = 8 in
  let lru = Lru.create ~k in
  let c = Attack.item_cache lru ~k ~h ~block_size ~cycles:10 in
  Format.printf
    "LRU with %dx the offline cache's space still loses %.1fx on the@.\
     whole-block adversarial trace (classical paging predicts %.2fx)@."
    (k / h)
    (Adversary.measured_ratio c)
    (Gc_bounds.Sleator_tarjan.competitive_ratio ~k:(float_of_int k)
       ~h:(float_of_int h));

  (* Section 5: IBLP. *)
  heading "IBLP: an item layer in front of a block layer (Section 5)";
  let rng = Rng.create 7 in
  let mixed =
    Generators.interleave
      (Generators.zipf_items (Rng.split rng) ~n:20_000 ~universe:1024
         ~block_size ~alpha:1.1)
      (Generators.spatial_mix (Rng.split rng) ~n:20_000 ~universe:16_384
         ~block_size ~p_spatial:0.9)
  in
  List.iter
    (fun (name, p) ->
      let m = Simulator.run p mixed in
      Format.printf "  %-22s %6d misses@." name m.Metrics.misses)
    [
      ("item cache (LRU)", Lru.create ~k:512);
      ("block cache (LRU)", Block_lru.create ~k:512 ~blocks:mixed.Trace.blocks);
      ("IBLP (even split)", Iblp.create ~i:256 ~b:256 ~blocks:mixed.Trace.blocks ());
    ];

  (* Section 7: the locality model. *)
  heading "The extended locality model (Section 7)";
  let windows = [ 64; 512; 4096 ] in
  List.iter
    (fun n ->
      Format.printf "  window %5d: f = %4d items, g = %4d blocks (ratio %.2f)@."
        n
        (Gc_locality.Working_set.f_at mixed n)
        (Gc_locality.Working_set.g_at mixed n)
        (float_of_int (Gc_locality.Working_set.f_at mixed n)
        /. float_of_int (Gc_locality.Working_set.g_at mixed n)))
    windows;
  Format.printf
    "@.f counts distinct items per window, g distinct blocks; their ratio@.\
     is the trace's spatial locality, and Theorems 8-11 turn it into@.\
     fault-rate bounds - run 'dune exec bench/main.exe' for all of them.@."
