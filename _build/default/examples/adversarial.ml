(* Reproducing the paper's lower bounds empirically: build the adversarial
   traces of Theorems 2-4 against live policies and compare the measured
   competitive ratio (vs. a certified offline schedule) with the formulas.

   Run with:  dune exec examples/adversarial.exe *)

open Gc_trace
open Gc_cache

let print_result name c ~h =
  let measured = Adversary.measured_ratio c in
  let clair = Gc_offline.Clairvoyant.cost ~k:h c.Adversary.trace in
  let claimed = c.Adversary.opt_misses + c.Adversary.warmup_opt_misses in
  Format.printf
    "%-28s measured ratio %7.2f   bound %7.2f   OPT claimed %d / certified %d@."
    name measured c.Adversary.bound claimed clair

let () =
  let block_size = 16 in
  let k = 512 and h = 64 in
  let blocks = Block_map.uniform ~block_size in
  Format.printf
    "Adversarial constructions, k = %d, h = %d, B = %d (30 cycles each)@.@." k
    h block_size;

  (* Theorem 2: any Item Cache suffers ~B times the classical ST ratio. *)
  Format.printf "-- Theorem 2 trace (whole fresh blocks) vs item caches@.";
  List.iter
    (fun name ->
      let p = Registry.make name ~k ~blocks ~seed:3 in
      let c = Attack.item_cache p ~k ~h ~block_size ~cycles:30 in
      print_result name c ~h)
    [ "lru"; "fifo"; "clock" ];
  Format.printf "   (Sleator-Tarjan, spatial-blind, would predict only %.2f)@.@."
    (Gc_bounds.Sleator_tarjan.competitive_ratio ~k:(float_of_int k)
       ~h:(float_of_int h));

  (* Theorem 3: Block Caches against one-item-per-block traffic. *)
  Format.printf "-- Theorem 3 trace (one item per block) vs block caches@.";
  let h3 = 16 in
  let p = Registry.make "block-lru" ~k ~blocks ~seed:3 in
  let c = Attack.block_cache p ~k ~h:h3 ~block_size ~cycles:30 in
  print_result "block-lru" c ~h:h3;
  let p = Registry.make "block-lru" ~k ~blocks ~seed:3 in
  let c = Attack.block_cache p ~k ~h:(2 * h3) ~block_size ~cycles:30 in
  print_result "block-lru (h doubled)" c ~h:(2 * h3);
  Format.printf
    "   (the ratio blows up as B(h-1) approaches k: effective capacity k/B)@.@.";

  (* Theorem 4: the a-parameter family; the extremes are optimal. *)
  Format.printf "-- Theorem 4 trace vs the a-parameter family@.";
  List.iter
    (fun a ->
      let p = Param_a.create ~k ~a ~blocks in
      let c = Attack.general_a p ~k ~h ~block_size ~cycles:30 in
      print_result (Printf.sprintf "param-a (a = %d)" a) c ~h)
    [ 1; 2; 4; 8; 16 ];
  Format.printf
    "   (Section 4.4: only a = 1 and a = B are worth using; middle a loses)@.@.";

  (* IBLP against the same adversaries: close to the problem's lower bound. *)
  Format.printf "-- IBLP under attack (optimal split for this h)@.";
  let i =
    int_of_float
      (Gc_bounds.Partitioning.optimal_i ~k:(float_of_int k)
         ~h:(float_of_int h) ~block_size:(float_of_int block_size))
  in
  let iblp () = Iblp.create ~i ~b:(k - i) ~blocks () in
  let c = Attack.item_cache (iblp ()) ~k ~h ~block_size ~cycles:30 in
  print_result "iblp vs thm2 trace" c ~h;
  let c = Attack.sleator_tarjan (iblp ()) ~k ~h ~cycles:30 in
  print_result "iblp vs ST trace" c ~h;
  Format.printf "   theory: IBLP upper bound %.2f, problem lower bound %.2f@."
    (Gc_bounds.Partitioning.optimal_ratio ~k:(float_of_int k)
       ~h:(float_of_int h) ~block_size:(float_of_int block_size))
    (Gc_bounds.Lower_bounds.best ~k:(float_of_int k) ~h:(float_of_int h)
       ~block_size:(float_of_int block_size))
