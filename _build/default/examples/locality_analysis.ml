(* The extended locality model in action (paper Sections 2 and 7): measure
   f(n) and g(n) of a workload, fit the polynomial locality functions, and
   compare measured fault rates against the Theorem 8-11 bounds.

   Run with:  dune exec examples/locality_analysis.exe *)

open Gc_trace
open Gc_locality

let () =
  let block_size = 16 in
  let rng = Rng.create 7 in
  (* A workload with f(n) ~ n^(1/2) and spatial ratio ~4. *)
  let trace =
    Synthesis.power_law (Rng.split rng) ~n:100_000 ~p:2.0 ~rho:4.0 ~block_size
  in
  Format.printf "workload: %a@.@." Trace.pp trace;

  (* Measure the locality profile. *)
  let windows =
    List.filter (fun n -> n >= 16) (Working_set.geometric_windows trace ~steps:14)
  in
  Format.printf "%10s %10s %10s %8s@." "window n" "f(n)" "g(n)" "f/g";
  let profile = Working_set.profile trace ~windows in
  List.iter
    (fun (n, f, g) ->
      Format.printf "%10d %10d %10d %8.2f@." n f g
        (float_of_int f /. float_of_int g))
    profile;

  (* Fit f and g to the polynomial family the bounds need. *)
  let fit_f = Concave_fit.fit_power (List.map (fun (n, f, _) -> (n, f)) profile) in
  let fit_g = Concave_fit.fit_power (List.map (fun (n, _, g) -> (n, g)) profile) in
  Format.printf "@.fitted f(n) = %.2f n^(1/%.2f),  g(n) = %.2f n^(1/%.2f)@."
    fit_f.Concave_fit.coeff fit_f.Concave_fit.p fit_g.Concave_fit.coeff
    fit_g.Concave_fit.p;

  let f =
    Gc_bounds.Locality_fn.power ~coeff:fit_f.Concave_fit.coeff
      ~p:fit_f.Concave_fit.p ()
  in
  let g =
    Gc_bounds.Locality_fn.power ~coeff:fit_g.Concave_fit.coeff
      ~p:fit_g.Concave_fit.p ()
  in

  (* Compare measured fault rates with the locality-model bounds for a
     range of cache sizes. *)
  Format.printf "@.%8s %12s %12s %12s %12s@." "k" "LRU" "IBLP(i=b)"
    "thm11 bound" "thm8 lower";
  List.iter
    (fun k ->
      let kf = float_of_int k and bb = float_of_int block_size in
      let run policy =
        Gc_cache.Metrics.fault_rate (Gc_cache.Simulator.run policy trace)
      in
      let lru = run (Gc_cache.Lru.create ~k) in
      let iblp =
        run (Gc_cache.Iblp.create ~i:(k / 2) ~b:(k - (k / 2)) ~blocks:trace.Trace.blocks ())
      in
      let upper =
        Gc_bounds.Fault_rate.iblp ~i:(kf /. 2.) ~b:(kf /. 2.) ~block_size:bb ~f
          ~g
      in
      let lower = Gc_bounds.Fault_rate.lower ~k:kf ~f ~g in
      Format.printf "%8d %12.4f %12.4f %12.4f %12.4f@." k lru iblp upper lower)
    [ 64; 128; 256; 512; 1024 ];
  Format.printf
    "@.Measured IBLP fault rates stay below the Theorem-11 upper bound at@.\
     every size.  The Theorem-8 column is the worst-case floor over ALL@.\
     traces with this locality profile - a benign trace like this one can@.\
     fault less, but no policy can beat that floor on its worst trace.@."
