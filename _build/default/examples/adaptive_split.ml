(* The unknown-h problem, live: Section 5.3 shows IBLP's best split depends
   on the offline size it is compared against, and Figure 6 shows a fixed
   split degrading off its design point.  This example runs a workload whose
   character flips between temporal and spatial phases and compares fixed
   splits against the ghost-feedback adaptive variant.

   Run with:  dune exec examples/adaptive_split.exe *)

open Gc_trace
open Gc_cache

let () =
  let block_size = 16 in
  let k = 512 in
  let rng = Rng.create 99 in
  let temporal label seed n =
    ( label,
      Generators.zipf_items (Rng.create seed) ~n ~universe:4096 ~block_size
        ~alpha:1.0 )
  in
  let spatial label n =
    ( label,
      Generators.spatial_mix (Rng.split rng) ~n ~universe:16_384 ~block_size
        ~p_spatial:0.9 )
  in
  let phases =
    [ temporal "temporal-1" 1 40_000; spatial "spatial" 40_000;
      temporal "temporal-2" 2 40_000 ]
  in
  let trace = Generators.concat_phases (List.map snd phases) in

  (* Per-phase miss accounting via the streaming driver. *)
  let boundaries =
    let acc = ref 0 in
    List.map
      (fun (label, t) ->
        acc := !acc + Trace.length t;
        (label, !acc))
      phases
  in
  let run name =
    let p = Registry.make name ~k ~blocks:trace.Trace.blocks ~seed:5 in
    let d = Simulator.create p trace.Trace.blocks in
    let per_phase = ref [] in
    let last = ref 0 in
    let upcoming = ref boundaries in
    Trace.iteri
      (fun pos x ->
        ignore (Simulator.access d x);
        match !upcoming with
        | (label, stop) :: rest when pos + 1 = stop ->
            let misses = (Simulator.metrics d).Metrics.misses in
            per_phase := (label, misses - !last) :: !per_phase;
            last := misses;
            upcoming := rest
        | _ -> ())
      trace;
    List.rev !per_phase
  in
  let policies =
    [ "lru"; "iblp:i=448,b=64"; "iblp"; "iblp:i=64,b=448"; "iblp-adaptive" ]
  in
  Format.printf "%-20s" "policy";
  List.iter (fun (label, _) -> Format.printf " %12s" label) boundaries;
  Format.printf " %12s@." "total";
  List.iter
    (fun name ->
      let per_phase = run name in
      Format.printf "%-20s" name;
      List.iter (fun (_, m) -> Format.printf " %12d" m) per_phase;
      Format.printf " %12d@."
        (List.fold_left (fun a (_, m) -> a + m) 0 per_phase))
    policies;
  Format.printf
    "@.The item-heavy split wins the temporal phases and loses the spatial@.\
     one; the block-heavy split is the mirror image.  The adaptive variant@.\
     re-partitions at the phase changes and stays near the per-phase winner@.\
     without knowing the schedule.@."
