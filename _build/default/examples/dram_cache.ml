(* A DRAM-cache scenario at a granularity boundary (paper Section 1): a
   64 B-line cache in front of 4 KB rows.  Every miss opens one row; the
   policy decides how many of the row's 64 lines to take.

   Three workloads stress different localities:
   - row-major matrix sweep: maximal spatial locality;
   - column-major sweep of the same matrix: adjacent accesses 8 KB apart;
   - skewed key-value lookups on small records: temporal locality only.

   Run with:  dune exec examples/dram_cache.exe *)

open Gc_memhier

let policies = [ "lru"; "block-lru"; "iblp"; "gcm"; "param-a:1" ]

let report name addrs =
  Format.printf "@.== %s (%d accesses)@." name (Array.length addrs);
  Format.printf "%-12s %12s %14s %14s %10s@." "policy" "row opens"
    "lines loaded" "bytes loaded" "hit rate";
  List.iter
    (fun pname ->
      let h =
        Hierarchy.create Geometry.sram_dram ~capacity_lines:4096
          ~make_policy:(fun ~k ~blocks ->
            Gc_cache.Registry.make pname ~k ~blocks ~seed:7)
      in
      Hierarchy.run h addrs;
      let s = Hierarchy.stats h in
      Format.printf "%-12s %12d %14d %14d %9.2f%%@." pname s.Hierarchy.misses
        s.Hierarchy.lines_loaded s.Hierarchy.bytes_loaded
        (100. *. float_of_int s.Hierarchy.hits /. float_of_int s.Hierarchy.accesses))
    policies

let () =
  let rng = Gc_trace.Rng.create 1 in
  (* 512 x 512 matrix of 8-byte doubles = 2 MiB, cache = 256 KiB. *)
  let rows = 512 and cols = 512 and elem_bytes = 8 in
  report "matrix, row-major sweep (streaming)"
    (Workloads.matrix_row_major ~rows ~cols ~elem_bytes ~base:0);
  report "matrix, column-major sweep (strided)"
    (Workloads.matrix_col_major ~rows ~cols ~elem_bytes ~base:0);
  report "key-value store, zipf(1.0) over 64 B records"
    (Workloads.zipf_records (Gc_trace.Rng.split rng) ~n:262_144 ~records:65_536
       ~record_bytes:64 ~alpha:1.0 ~base:0);
  report "mixed: streaming interleaved with pointer chasing"
    (Workloads.interleave
       (Workloads.sequential ~n:131_072 ~start:0 ~step:64)
       (Workloads.pointer_chase (Gc_trace.Rng.split rng) ~n:131_072
          ~nodes:16_384 ~node_bytes:64 ~base:16_777_216));
  (* Writes: the paper's theory covers reads; the write side of the same
     boundary is about coalescing dirty lines into row writes, and the
     granularity trade-off mirrors the read side. *)
  let report_writes name workload =
    Format.printf "@.== writes: %s@." name;
    Format.printf "%-12s %14s %16s@." "policy" "dirty lines" "row writes";
    List.iter
      (fun pname ->
        let wb =
          Writeback.create Geometry.sram_dram ~capacity_lines:4096
            ~make_policy:(fun ~k ~blocks ->
              Gc_cache.Registry.make pname ~k ~blocks ~seed:7)
        in
        Writeback.run wb workload;
        Writeback.flush wb;
        let s = Writeback.stats wb in
        Format.printf "%-12s %14d %16d@." pname s.Writeback.dirty_evictions
          s.Writeback.writeback_rows)
      policies
  in
  (* Append-only log: consecutive dirty lines share rows; whole-row
     eviction coalesces them into one row write each. *)
  report_writes "append-only log (sequential stores)"
    (Workloads.log_append ~n:131_072 ~base:0 ~record_bytes:64);
  (* Scattered updates: one dirty line per row; row-granularity eviction
     only shortens dirty lifetimes and writes back more. *)
  report_writes "scattered updates (zipf stores, 1 line/row)"
    (Workloads.read_write_mix (Gc_trace.Rng.split rng)
       ~addrs:
         (Workloads.zipf_records (Gc_trace.Rng.split rng) ~n:131_072
            ~records:32_768 ~record_bytes:64 ~alpha:0.9 ~base:0)
       ~write_fraction:0.3);
  Format.printf
    "@.Takeaway: whole-row policies win streaming but collapse on sparse@.\
     access; IBLP tracks the better baseline on each workload, which is@.\
     exactly the behaviour Theorems 2/3/7 predict.  The write side mirrors@.\
     it: sequential stores coalesce under row-granularity eviction, while@.\
     scattered stores favour item granularity - footnote 1's read/write@.\
     granularity split is the same trade-off again.@."
