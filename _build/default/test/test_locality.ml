open Gc_trace
open Gc_locality

let rng () = Rng.create 31337

(* ------------------------------------------------------------ working set *)

let brute_force_max_distinct proj requests n =
  let len = Array.length requests in
  if n <= 0 then 0
  else begin
    let best = ref 0 in
    for start = 0 to max 0 (len - 1) do
      let stop = min (len - 1) (start + n - 1) in
      let seen = Hashtbl.create 8 in
      for p = start to stop do
        Hashtbl.replace seen (proj requests.(p)) ()
      done;
      if Hashtbl.length seen > !best then best := Hashtbl.length seen
    done;
    !best
  end

let qcheck_f_matches_brute_force =
  Test_util.qcheck ~count:150 "f(n) matches brute force"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 20))
    (fun ((bs, reqs), n) ->
      let trace = Test_util.trace_of (bs, reqs) in
      Working_set.f_at trace n = brute_force_max_distinct (fun x -> x) reqs n)

let qcheck_g_matches_brute_force =
  Test_util.qcheck ~count:150 "g(n) matches brute force"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 20))
    (fun ((bs, reqs), n) ->
      let trace = Test_util.trace_of (bs, reqs) in
      Working_set.g_at trace n
      = brute_force_max_distinct (fun x -> x / bs) reqs n)

let qcheck_locality_sandwich =
  Test_util.qcheck ~count:150 "g <= f <= B * g and monotone"
    (Test_util.small_trace_arbitrary ~max_len:60 ())
    (fun (bs, reqs) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let ok = ref true in
      for n = 1 to Array.length reqs do
        let f = Working_set.f_at trace n and g = Working_set.g_at trace n in
        if not (g <= f && f <= bs * g) then ok := false;
        if n > 1 && Working_set.f_at trace (n - 1) > f then ok := false
      done;
      !ok)

let test_f_full_length_is_distinct_items () =
  let t = Generators.uniform_random (rng ()) ~n:500 ~universe:60 ~block_size:4 in
  Alcotest.(check int) "f(T) = distinct"
    (Trace.distinct_items t)
    (Working_set.f_at t (Trace.length t))

let test_inverse_f () =
  let t = Generators.sequential ~n:100 ~universe:50 ~block_size:4 in
  (* Sequential scan: a window of n fresh accesses holds n distinct items
     (up to the universe), so f_inv(m) = m. *)
  Alcotest.(check int) "f_inv(10)" 10 (Working_set.inverse_f t 10);
  Alcotest.(check int) "unreachable" (Trace.length t + 1)
    (Working_set.inverse_f t 51)

let test_profiles () =
  let t = Generators.uniform_random (rng ()) ~n:2000 ~universe:100 ~block_size:4 in
  let windows = Working_set.geometric_windows t ~steps:8 in
  Alcotest.(check bool) "sorted unique" true
    (List.sort_uniq compare windows = windows);
  let profile = Working_set.profile t ~windows in
  List.iter
    (fun (n, f, g) ->
      Alcotest.(check bool) "consistent" true
        (f = Working_set.f_at t n && g = Working_set.g_at t n))
    profile;
  let ratios = Working_set.spatial_ratio_profile t ~windows in
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "ratio in [1, B]" true (r >= 1. && r <= 4.))
    ratios

(* ------------------------------------------------------------ concave fit *)

let test_fit_power_exact () =
  (* Exact data f(n) = 3 n^(1/2). *)
  let points =
    List.map
      (fun n -> (n, int_of_float (Float.round (3. *. sqrt (float_of_int n)))))
      [ 4; 16; 64; 256; 1024; 4096; 16384 ]
  in
  let fit = Concave_fit.fit_power points in
  Test_util.check_rel ~rel:0.05 "p" 2. fit.Concave_fit.p;
  Test_util.check_rel ~rel:0.10 "coeff" 3. fit.Concave_fit.coeff;
  Alcotest.(check bool) "small residual" true (fit.Concave_fit.rmse < 0.05)

let test_fit_power_linear () =
  let points = List.map (fun n -> (n, n)) [ 1; 2; 4; 8; 16; 32 ] in
  let fit = Concave_fit.fit_power points in
  Test_util.check_rel ~rel:1e-6 "p = 1" 1. fit.Concave_fit.p

let test_fit_power_needs_points () =
  match Concave_fit.fit_power [ (4, 2) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single point accepted"

let test_envelope_dominates () =
  let points = [ (1, 1); (2, 3); (3, 2); (4, 4); (5, 3); (10, 5) ] in
  let env = Concave_fit.upper_concave_envelope points in
  List.iter2
    (fun (n, v) (n', e) ->
      Alcotest.(check int) "same n" n n';
      Alcotest.(check bool) "dominates" true (e +. 1e-9 >= float_of_int v))
    (List.sort compare points) env

let test_envelope_concave () =
  let points = [ (1, 1); (2, 3); (3, 2); (4, 4); (5, 3); (10, 5) ] in
  let env = Concave_fit.upper_concave_envelope points in
  (* Slopes between consecutive envelope points are non-increasing. *)
  let rec slopes = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        ((y2 -. y1) /. float_of_int (x2 - x1)) :: slopes rest
    | _ -> []
  in
  let ss = slopes env in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "concave" true (non_increasing ss)

(* -------------------------------------------------------------- synthesis *)

let test_power_law_recovers_exponent () =
  List.iter
    (fun target_p ->
      let t =
        Synthesis.power_law (rng ()) ~n:60_000 ~p:target_p ~rho:1.
          ~block_size:16
      in
      let windows =
        List.filter (fun n -> n >= 64) (Working_set.geometric_windows t ~steps:16)
      in
      let profile =
        List.map (fun (n, f, _) -> (n, f)) (Working_set.profile t ~windows)
      in
      let fit = Concave_fit.fit_power profile in
      Alcotest.(check bool)
        (Printf.sprintf "target p=%.1f fitted %.2f" target_p fit.Concave_fit.p)
        true
        (Float.abs (fit.Concave_fit.p -. target_p) /. target_p < 0.35))
    [ 1.5; 2.; 3. ]

let test_power_law_spatial_ratio () =
  let measure rho =
    let t = Synthesis.power_law (rng ()) ~n:40_000 ~p:2. ~rho ~block_size:16 in
    float_of_int (Trace.distinct_items t) /. float_of_int (Trace.distinct_blocks t)
  in
  let r1 = measure 1. and r8 = measure 8. in
  Test_util.check_rel ~rel:0.3 "rho 1" 1. r1;
  Test_util.check_rel ~rel:0.3 "rho 8" 8. r8

let test_power_law_validation () =
  (match Synthesis.power_law (rng ()) ~n:10 ~p:0.5 ~rho:1. ~block_size:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p < 1 accepted");
  match Synthesis.power_law (rng ()) ~n:10 ~p:2. ~rho:9. ~block_size:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rho > B accepted"

(* ------------------------------------------------------------- theorem 8 *)

module Thm8 = Synthesis.Thm8 (Gc_cache.Policy.Oracle)

let test_thm8_forces_faults_on_lru () =
  let k = 40 in
  (* f(n) = n^(1/2): f_inv(m) = m^2; g(n) = f(n)/4. *)
  let f_inv m = m * m in
  let g n = max 1 (int_of_float (sqrt (float_of_int n)) / 4) in
  let lru = Gc_cache.Lru.create ~k in
  let r = Thm8.run lru ~k ~f_inv ~g ~block_size:16 ~phases:6 in
  Alcotest.(check bool) "ran" true (r.Thm8.accesses > 0);
  (* The construction guarantees at least g(L) faults per phase against any
     deterministic policy; allow slack for the best-effort item choice. *)
  Alcotest.(check bool)
    (Printf.sprintf "faults %d >= 0.8 * bound %.0f" r.Thm8.online_faults
       r.Thm8.bound_faults)
    true
    (float_of_int r.Thm8.online_faults >= 0.8 *. r.Thm8.bound_faults);
  (* The trace uses exactly k + 1 items. *)
  Alcotest.(check int) "k+1 items" (k + 1) (Trace.distinct_items r.Thm8.trace)

let test_thm8_respects_locality () =
  let k = 30 in
  let f_inv m = m * m in
  let g n = max 1 (int_of_float (sqrt (float_of_int n)) / 2) in
  let lru = Gc_cache.Lru.create ~k in
  let r = Thm8.run lru ~k ~f_inv ~g ~block_size:8 ~phases:4 in
  (* Windows of size n must contain at most ~f(n) = sqrt(n) items; the
     construction is built to respect it (constant-factor slack for the
     phase boundaries). *)
  let trace = r.Thm8.trace in
  List.iter
    (fun n ->
      let f_measured = Working_set.f_at trace n in
      let f_target = int_of_float (sqrt (float_of_int n)) in
      Alcotest.(check bool)
        (Printf.sprintf "f(%d) = %d <= 2 * %d" n f_measured f_target)
        true
        (f_measured <= (2 * f_target) + 2))
    [ 16; 64; 256 ]

let test_thm8_validation () =
  let lru = Gc_cache.Lru.create ~k:10 in
  (* Phases shorter than k - 1 repetitions cannot exist. *)
  (match Thm8.run lru ~k:10 ~f_inv:(fun m -> m / 2) ~g:(fun _ -> 1) ~block_size:16 ~phases:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too-short phases accepted");
  (* g(L) blocks must be able to host k + 1 items. *)
  match Thm8.run lru ~k:10 ~f_inv:(fun m -> m) ~g:(fun _ -> 1) ~block_size:4 ~phases:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undersized blocks accepted"

let () =
  Alcotest.run "gc_locality"
    [
      ( "working_set",
        [
          qcheck_f_matches_brute_force;
          qcheck_g_matches_brute_force;
          qcheck_locality_sandwich;
          Alcotest.test_case "f at full length" `Quick test_f_full_length_is_distinct_items;
          Alcotest.test_case "inverse f" `Quick test_inverse_f;
          Alcotest.test_case "profiles" `Quick test_profiles;
        ] );
      ( "concave_fit",
        [
          Alcotest.test_case "exact power" `Quick test_fit_power_exact;
          Alcotest.test_case "linear" `Quick test_fit_power_linear;
          Alcotest.test_case "needs points" `Quick test_fit_power_needs_points;
          Alcotest.test_case "envelope dominates" `Quick test_envelope_dominates;
          Alcotest.test_case "envelope concave" `Quick test_envelope_concave;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "recovers exponent" `Slow test_power_law_recovers_exponent;
          Alcotest.test_case "spatial ratio" `Quick test_power_law_spatial_ratio;
          Alcotest.test_case "validation" `Quick test_power_law_validation;
        ] );
      ( "thm8",
        [
          Alcotest.test_case "forces faults on LRU" `Quick test_thm8_forces_faults_on_lru;
          Alcotest.test_case "respects locality" `Quick test_thm8_respects_locality;
          Alcotest.test_case "validation" `Quick test_thm8_validation;
        ] );
    ]
