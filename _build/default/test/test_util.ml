(** Shared helpers for the test suites. *)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)

(* A trivially correct list-based cache used as a reference model for the
   production policies.  [touch_on_hit] distinguishes LRU from FIFO. *)
module Reference_cache = struct
  type t = { k : int; mutable items : int list; touch_on_hit : bool }

  let create ~k ~touch_on_hit = { k; items = []; touch_on_hit }

  (* Returns true on hit. *)
  let access t x =
    if List.mem x t.items then begin
      if t.touch_on_hit then
        t.items <- x :: List.filter (fun y -> y <> x) t.items;
      true
    end
    else begin
      let items = x :: t.items in
      let items =
        if List.length items > t.k then
          List.filteri (fun idx _ -> idx < t.k) items
        else items
      in
      t.items <- items;
      false
    end

  let misses t requests =
    Array.fold_left
      (fun acc x -> if access t x then acc else acc + 1)
      0 requests
end

let run_misses policy trace =
  (Gc_cache.Simulator.run policy trace).Gc_cache.Metrics.misses

(* qcheck generator for a small random trace plus a block size. *)
let small_trace_gen ?(max_universe = 12) ?(max_len = 40) () =
  QCheck.Gen.(
    let* universe = int_range 1 max_universe in
    let* block_size = int_range 1 4 in
    let* len = int_range 1 max_len in
    let* requests = list_size (return len) (int_range 0 (universe - 1)) in
    return (block_size, Array.of_list requests))

let small_trace_arbitrary ?max_universe ?max_len () =
  QCheck.make
    ?print:
      (Some
         (fun (bs, reqs) ->
           Printf.sprintf "B=%d [%s]" bs
             (String.concat ";" (Array.to_list (Array.map string_of_int reqs)))))
    (small_trace_gen ?max_universe ?max_len ())

let trace_of (block_size, requests) =
  Gc_trace.Trace.make
    (Gc_trace.Block_map.uniform ~block_size)
    (Array.copy requests)

let check_float ~eps msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let check_rel ~rel msg expected actual =
  if expected = actual then ()
  else begin
    let denom = Float.max (Float.abs expected) 1e-9 in
    if Float.abs (expected -. actual) /. denom > rel then
      Alcotest.failf "%s: expected %.6f, got %.6f (rel err > %g)" msg expected
        actual rel
  end
