open Gc_lp

let solve_ok ~c ~a ~b =
  match Simplex.solve ~c ~a ~b with
  | Simplex.Optimal { objective; solution } -> (objective, solution)
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"

let test_simplex_basic () =
  (* max x + y  s.t.  x <= 2, y <= 3 *)
  let obj, sol =
    solve_ok ~c:[| 1.; 1. |] ~a:[| [| 1.; 0. |]; [| 0.; 1. |] |] ~b:[| 2.; 3. |]
  in
  Test_util.check_float ~eps:1e-9 "objective" 5. obj;
  Test_util.check_float ~eps:1e-9 "x" 2. sol.(0);
  Test_util.check_float ~eps:1e-9 "y" 3. sol.(1)

let test_simplex_classic () =
  (* max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6) *)
  let obj, sol =
    solve_ok ~c:[| 3.; 5. |]
      ~a:[| [| 1.; 0. |]; [| 0.; 2. |]; [| 3.; 2. |] |]
      ~b:[| 4.; 12.; 18. |]
  in
  Test_util.check_float ~eps:1e-9 "objective" 36. obj;
  Test_util.check_float ~eps:1e-9 "x" 2. sol.(0);
  Test_util.check_float ~eps:1e-9 "y" 6. sol.(1)

let test_simplex_binding_mix () =
  (* max 2x + y  s.t.  x + y <= 4, x <= 3  -> 7 at (3, 1) *)
  let obj, sol =
    solve_ok ~c:[| 2.; 1. |] ~a:[| [| 1.; 1. |]; [| 1.; 0. |] |] ~b:[| 4.; 3. |]
  in
  Test_util.check_float ~eps:1e-9 "objective" 7. obj;
  Test_util.check_float ~eps:1e-9 "x" 3. sol.(0);
  Test_util.check_float ~eps:1e-9 "y" 1. sol.(1)

let test_simplex_unbounded () =
  match Simplex.solve ~c:[| 1.; 0. |] ~a:[| [| 0.; 1. |] |] ~b:[| 1. |] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs_feasible () =
  (* max x  s.t.  -x <= -2 (i.e. x >= 2), x <= 5  -> 5 *)
  let obj, _ =
    solve_ok ~c:[| 1. |] ~a:[| [| -1. |]; [| 1. |] |] ~b:[| -2.; 5. |]
  in
  Test_util.check_float ~eps:1e-9 "objective" 5. obj

let test_simplex_infeasible () =
  (* x >= 3 and x <= 1 *)
  match Simplex.solve ~c:[| 1. |] ~a:[| [| -1. |]; [| 1. |] |] ~b:[| -3.; 1. |] with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_degenerate () =
  (* Degenerate vertex: redundant constraints through the optimum. *)
  let obj, _ =
    solve_ok ~c:[| 1.; 1. |]
      ~a:[| [| 1.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |]
      ~b:[| 1.; 1.; 1.; 2. |]
  in
  Test_util.check_float ~eps:1e-9 "objective" 2. obj

let test_simplex_shape_validation () =
  (match Simplex.solve ~c:[| 1. |] ~a:[| [| 1.; 2. |] |] ~b:[| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged A accepted");
  match Simplex.solve ~c:[| 1. |] ~a:[| [| 1. |] |] ~b:[||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad b accepted"

let qcheck_simplex_respects_constraints =
  Test_util.qcheck ~count:200 "solutions satisfy constraints"
    QCheck.(
      make
        Gen.(
          let dim = 2 in
          let* rows = int_range 1 4 in
          let* a =
            list_size (return rows)
              (list_size (return dim) (float_range 0.1 5.0))
          in
          let* b = list_size (return rows) (float_range 0.5 10.0) in
          let* c = list_size (return dim) (float_range 0.1 3.0) in
          return (a, b, c)))
    (fun (a, b, c) ->
      let a = Array.of_list (List.map Array.of_list a) in
      let b = Array.of_list b and c = Array.of_list c in
      match Simplex.solve ~c ~a ~b with
      | Simplex.Optimal { solution; _ } ->
          Array.for_all (fun x -> x >= -1e-7) solution
          && Array.for_all2
               (fun row bi ->
                 Array.fold_left ( +. ) 0.
                   (Array.mapi (fun j v -> v *. solution.(j)) row)
                 <= bi +. 1e-6)
               a b
      | Simplex.Unbounded | Simplex.Infeasible ->
          (* With positive A and b >= 0 this cannot happen. *)
          false)

(* ---------------------------------------------------------------- grids *)

let test_ternary_max () =
  let x, v = Grid_opt.ternary_max ~lo:0. ~hi:10. (fun x -> -.((x -. 3.) ** 2.)) in
  Test_util.check_float ~eps:1e-6 "argmax" 3. x;
  Test_util.check_float ~eps:1e-9 "max" 0. v

let test_grid_max () =
  let f x = sin x +. (0.1 *. x) in
  let x, _ = Grid_opt.grid_max ~steps:512 ~lo:0. ~hi:16. f in
  (* Global max of sin x + x/10 on [0, 16] is the third peak (~14.1): the
     linear term makes later peaks higher, and 16 is past the crest. *)
  Alcotest.(check bool) "found global peak" true (x > 13.5 && x < 14.8)

let test_grid_max2 () =
  let f x y = -.((x -. 1.) ** 2.) -. ((y -. 2.) ** 2.) in
  let (x, y), v = Grid_opt.grid_max2 ~steps:64 ~lo1:0. ~hi1:3. ~lo2:0. ~hi2:3. f in
  Test_util.check_float ~eps:0.01 "x" 1. x;
  Test_util.check_float ~eps:0.01 "y" 2. y;
  Alcotest.(check bool) "near zero" true (v > -0.01)

(* ----------------------------------------------------------- fractional *)

let test_theorem5_closed_form () =
  List.iter
    (fun (i, h) ->
      Test_util.check_rel ~rel:1e-9 "thm5"
        (i /. (i -. h))
        (Fractional.theorem5 ~i ~h))
    [ (100., 10.); (2048., 512.); (1000., 999.) ]

let test_theorem5_insufficient_space () =
  Alcotest.(check bool) "i <= h diverges" true
    (Fractional.theorem5 ~i:10. ~h:10. = infinity)

let test_theorem6_closed_form () =
  List.iter
    (fun (b, h) ->
      let closed =
        let bb = 64. in
        Float.min bb ((b +. (2. *. bb *. h) -. bb) /. (b +. bb))
      in
      Test_util.check_rel ~rel:1e-3 "thm6" closed
        (Fractional.theorem6 ~b ~block_size:64. ~h))
    [ (2000., 100.); (4000., 50.); (1000., 500.); (512., 8.) ]

let test_theorem6_capped_at_b () =
  (* Huge h: the ratio caps at B because at most B items load per miss. *)
  let v = Fractional.theorem6 ~b:100. ~block_size:16. ~h:10_000. in
  Test_util.check_rel ~rel:1e-6 "capped" 16. v

let test_theorem7_numeric_at_most_closed =
  (* The printed Theorem 7 expression is a valid upper bound; the numeric
     optimum can be strictly below it when the interior optimum has r < 0. *)
  Test_util.qcheck ~count:60 "numeric <= closed form"
    QCheck.(
      make
        Gen.(
          let* i = float_range 100. 5000. in
          let* b = float_range 64. 5000. in
          let* h = float_range 2. 99. in
          return (i, b, h)))
    (fun (i, b, h) ->
      let closed = Gc_bounds.Iblp_upper.combined ~i ~b ~block_size:64. ~h in
      let numeric = Fractional.theorem7 ~i ~b ~block_size:64. ~h in
      numeric <= closed *. (1. +. 1e-6))

let test_theorem7_matches_when_interior () =
  (* When the paper's interior optimum is feasible (r* >= 0) and t* <= B the
     closed form is tight. *)
  List.iter
    (fun (i, b, h) ->
      let bb = 64. in
      let r_star =
        (b +. (bb *. ((4. *. h) -. (2. *. i) -. 1.)))
        /. (b +. (bb *. ((2. *. i) -. 1.)))
      in
      Alcotest.(check bool) "interior optimum" true (r_star >= 0.);
      let closed = Gc_bounds.Iblp_upper.combined ~i ~b ~block_size:bb ~h in
      let numeric = Fractional.theorem7 ~i ~b ~block_size:bb ~h in
      Test_util.check_rel ~rel:1e-2 "tight" closed numeric)
    [ (1500., 500., 1000.); (2000., 1000., 1400.); (800., 4000., 700.) ]

let test_theorem7_inner_lp () =
  match Fractional.theorem7_inner ~t:4. ~i:100. ~b:200. ~block_size:16. ~h:50. with
  | Some (r, s) ->
      Alcotest.(check bool) "r bounds" true (r >= -1e-9 && r <= 1.);
      Alcotest.(check bool) "s bounds" true (s >= -1e-9);
      (* Constraints hold. *)
      let c = Fractional.triangle_cost ~b:200. ~block_size:16. ~t:4. in
      Alcotest.(check bool) "space" true ((100. *. r) +. (c *. s) <= 50. +. 1e-6);
      Alcotest.(check bool) "accesses" true (r +. (4. *. s) <= 1. +. 1e-6)
  | None -> Alcotest.fail "inner LP infeasible"

let test_triangle_cost () =
  (* t items, each outliving the previous by b/B + 1 accesses:
     C(t) = t + (b/B + 1) t (t-1) / 2. *)
  Test_util.check_float ~eps:1e-9 "C(1)" 1.
    (Fractional.triangle_cost ~b:64. ~block_size:16. ~t:1.);
  Test_util.check_float ~eps:1e-9 "C(3)" (3. +. (5. *. 3.))
    (Fractional.triangle_cost ~b:64. ~block_size:16. ~t:3.)

let () =
  Alcotest.run "gc_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "classic" `Quick test_simplex_classic;
          Alcotest.test_case "binding mix" `Quick test_simplex_binding_mix;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs feasible" `Quick test_simplex_negative_rhs_feasible;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "shape validation" `Quick test_simplex_shape_validation;
          qcheck_simplex_respects_constraints;
        ] );
      ( "grid_opt",
        [
          Alcotest.test_case "ternary" `Quick test_ternary_max;
          Alcotest.test_case "grid refine" `Quick test_grid_max;
          Alcotest.test_case "grid 2d" `Quick test_grid_max2;
        ] );
      ( "fractional",
        [
          Alcotest.test_case "thm5 closed form" `Quick test_theorem5_closed_form;
          Alcotest.test_case "thm5 diverges" `Quick test_theorem5_insufficient_space;
          Alcotest.test_case "thm6 closed form" `Quick test_theorem6_closed_form;
          Alcotest.test_case "thm6 capped at B" `Quick test_theorem6_capped_at_b;
          test_theorem7_numeric_at_most_closed;
          Alcotest.test_case "thm7 tight when interior" `Quick test_theorem7_matches_when_interior;
          Alcotest.test_case "thm7 inner LP" `Quick test_theorem7_inner_lp;
          Alcotest.test_case "triangle cost" `Quick test_triangle_cost;
        ] );
    ]
