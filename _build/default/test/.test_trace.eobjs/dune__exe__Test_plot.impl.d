test/test_plot.ml: Alcotest Ascii_plot Gc_cache Gc_offline Gc_plot Gc_trace List Occupancy Printf String
