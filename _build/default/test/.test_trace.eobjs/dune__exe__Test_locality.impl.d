test/test_locality.ml: Alcotest Array Concave_fit Float Gc_cache Gc_locality Gc_trace Generators Hashtbl List Printf QCheck Rng Synthesis Test_util Trace Working_set
