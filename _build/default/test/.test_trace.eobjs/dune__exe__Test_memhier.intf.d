test/test_memhier.mli:
