test/test_bounds.ml: Alcotest Fault_rate Figures Float Gc_bounds Gen Iblp_upper List Locality_fn Lower_bounds Partitioning Printf QCheck Randomized Sleator_tarjan Table1 Table2 Test_util
