test/test_memhier.ml: Alcotest Array Gc_cache Gc_memhier Gc_trace Geometry Hierarchy Kernels Printf Two_level Workloads Writeback
