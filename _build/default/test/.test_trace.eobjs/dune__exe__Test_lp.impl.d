test/test_lp.ml: Alcotest Array Float Fractional Gc_bounds Gc_lp Gen Grid_opt List QCheck Simplex Test_util
