open Gc_trace
open Gc_offline

let rng () = Rng.create 2024

(* ------------------------------------------------------------- Next_use *)

let qcheck_next_use =
  Test_util.qcheck ~count:200 "next_use matches brute force"
    (Test_util.small_trace_arbitrary ())
    (fun (bs, reqs) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let nu = Next_use.of_trace trace in
      let n = Array.length reqs in
      let ok = ref true in
      for pos = 0 to n - 1 do
        let expected =
          let rec find p =
            if p >= n then Next_use.never
            else if reqs.(p) = reqs.(pos) then p
            else find (p + 1)
          in
          find (pos + 1)
        in
        if Next_use.at nu pos <> expected then ok := false
      done;
      !ok)

let test_next_use_after () =
  let trace = Test_util.trace_of (1, [| 3; 1; 3; 2; 1 |]) in
  let nu = Next_use.of_trace trace in
  Alcotest.(check int) "after 0 item 3" 0 (Next_use.after nu ~pos:0 ~item:3);
  Alcotest.(check int) "after 1 item 3" 2 (Next_use.after nu ~pos:1 ~item:3);
  Alcotest.(check int) "after 3 item 3" Next_use.never
    (Next_use.after nu ~pos:3 ~item:3);
  Alcotest.(check int) "never seen" Next_use.never
    (Next_use.after nu ~pos:0 ~item:42)

(* --------------------------------------------------------------- Belady *)

let qcheck_belady_beats_online_item_policies =
  Test_util.qcheck ~count:200 "Belady <= every online item policy"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 6))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let opt = Belady.cost ~k trace in
      List.for_all
        (fun make ->
          opt <= Test_util.run_misses (make ()) trace)
        [
          (fun () -> Gc_cache.Lru.create ~k);
          (fun () -> Gc_cache.Fifo.create ~k);
          (fun () -> Gc_cache.Lfu.create ~k);
          (fun () -> Gc_cache.Clock.create ~k);
          (fun () -> Gc_cache.Random_evict.create ~k ~rng:(rng ()));
        ])

let qcheck_belady_equals_exact_when_b1 =
  Test_util.qcheck ~count:100 "Belady = exact optimum at B = 1"
    (QCheck.pair
       (Test_util.small_trace_arbitrary ~max_universe:8 ~max_len:18 ())
       QCheck.(int_range 1 5))
    (fun ((_, reqs), k) ->
      let trace = Test_util.trace_of (1, reqs) in
      Belady.cost ~k trace = Exact_gc.solve ~k trace)

let test_belady_wrong_trace_rejected () =
  let trace = Test_util.trace_of (1, [| 1; 2; 3 |]) in
  let p = Belady.create ~k:2 trace in
  ignore (Gc_cache.Policy.access p 1);
  match Gc_cache.Policy.access p 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted out-of-order request"

(* --------------------------------------------------------- Block_belady *)

let qcheck_block_belady_beats_block_lru =
  Test_util.qcheck ~count:200 "Block-Belady <= Block-LRU"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 4))
    (fun ((bs, reqs), kb) ->
      let k = kb * bs in
      let trace = Test_util.trace_of (bs, reqs) in
      Block_belady.cost ~k trace
      <= Test_util.run_misses
           (Gc_cache.Block_lru.create ~k ~blocks:trace.Trace.blocks)
           trace)

let test_block_belady_scan () =
  (* Scanning blocks sequentially: exactly one miss per block visit. *)
  let trace = Generators.block_scan ~n_blocks:6 ~repeats:2 ~block_size:4 in
  Alcotest.(check int) "one miss per block" 6 (Block_belady.cost ~k:8 trace)

(* ----------------------------------------------------------- Clairvoyant *)

let qcheck_exact_at_most_clairvoyant =
  Test_util.qcheck ~count:120 "exact <= clairvoyant <= belady"
    (QCheck.pair
       (Test_util.small_trace_arbitrary ~max_universe:9 ~max_len:22 ())
       QCheck.(int_range 1 5))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let exact = Exact_gc.solve ~k trace in
      let clair = Clairvoyant.cost ~k trace in
      exact <= clair && clair <= Belady.cost ~k trace)

let test_clairvoyant_loads_useful_siblings () =
  (* 0,1,2,3 all used soon: the first miss should take the whole block. *)
  let trace = Test_util.trace_of (4, [| 0; 1; 2; 3 |]) in
  Alcotest.(check int) "one miss" 1 (Clairvoyant.cost ~k:8 trace)

let test_clairvoyant_skips_useless_siblings () =
  (* Siblings never reused: loading them would evict the useful item 9. *)
  let trace = Test_util.trace_of (4, [| 9; 0; 9 |]) in
  (* k = 2: after 9 and 0 the cache is full; clairvoyant must not load 0's
     siblings over 9. *)
  Alcotest.(check int) "keeps the useful item" 2 (Clairvoyant.cost ~k:2 trace)

let test_clairvoyant_gap_statistics () =
  (* Offline GC caching is NP-complete, so the clairvoyant heuristic cannot
     be optimal; measure how far it strays on random small instances.  The
     specific ceiling matters less than having a tripwire if a refactor
     degrades it. *)
  let rng = Rng.create 2718 in
  let worst = ref 1.0 in
  let total_exact = ref 0 and total_clair = ref 0 in
  for _ = 1 to 200 do
    let bs = 1 + Rng.int rng 3 in
    let universe = 2 + Rng.int rng 8 in
    let n = 6 + Rng.int rng 16 in
    let requests = Array.init n (fun _ -> Rng.int rng universe) in
    let trace = Trace.make (Block_map.uniform ~block_size:bs) requests in
    let k = max bs (1 + Rng.int rng 5) in
    let exact = Exact_gc.solve ~k trace in
    let clair = Clairvoyant.cost ~k trace in
    total_exact := !total_exact + exact;
    total_clair := !total_clair + clair;
    if exact > 0 then
      worst := Float.max !worst (float_of_int clair /. float_of_int exact)
  done;
  let aggregate = float_of_int !total_clair /. float_of_int !total_exact in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate gap %.3f <= 1.05" aggregate)
    true (aggregate <= 1.05);
  Alcotest.(check bool)
    (Printf.sprintf "worst instance gap %.3f <= 1.5" !worst)
    true (!worst <= 1.5)

(* --------------------------------------------------------------- Exact_gc *)

let test_exact_simple_cases () =
  (* Everything fits: only cold block misses. *)
  let trace = Test_util.trace_of (2, [| 0; 1; 2; 3; 0; 1; 2; 3 |]) in
  Alcotest.(check int) "fits" 2 (Exact_gc.solve ~k:4 trace);
  (* One slot: every distinct consecutive access misses. *)
  let trace2 = Test_util.trace_of (1, [| 0; 1; 0; 1 |]) in
  Alcotest.(check int) "thrash" 4 (Exact_gc.solve ~k:1 trace2);
  (* Spatial locality: one block streamed twice, cache holds it. *)
  let trace3 = Test_util.trace_of (3, [| 0; 1; 2; 0; 1; 2 |]) in
  Alcotest.(check int) "one load" 1 (Exact_gc.solve ~k:3 trace3)

let qcheck_exact_monotone_in_k =
  Test_util.qcheck ~count:100 "exact optimum monotone in k"
    (QCheck.pair
       (Test_util.small_trace_arbitrary ~max_universe:8 ~max_len:18 ())
       QCheck.(int_range 1 4))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      Exact_gc.solve ~k:(k + 1) trace <= Exact_gc.solve ~k trace)

let qcheck_exact_lower_bounds_online =
  Test_util.qcheck ~count:80 "exact <= every online policy"
    (QCheck.pair
       (Test_util.small_trace_arbitrary ~max_universe:8 ~max_len:20 ())
       QCheck.(int_range 1 3))
    (fun ((bs, reqs), kb) ->
      let k = kb * bs in
      let trace = Test_util.trace_of (bs, reqs) in
      let exact = Exact_gc.solve ~k trace in
      List.for_all
        (fun name ->
          let p = Gc_cache.Registry.make name ~k ~blocks:trace.Trace.blocks ~seed:1 in
          exact <= Test_util.run_misses p trace)
        [ "lru"; "block-lru"; "gcm"; "iblp"; "param-a:1"; "marking" ])

let test_exact_at_least_distinct_blocks =
  Test_util.qcheck ~count:100 "exact >= compulsory block misses"
    (Test_util.small_trace_arbitrary ~max_universe:8 ~max_len:20 ())
    (fun (bs, reqs) ->
      let trace = Test_util.trace_of (bs, reqs) in
      Exact_gc.solve ~k:8 trace >= Trace.distinct_blocks trace)

let qcheck_solve_schedule_is_valid_and_optimal =
  Test_util.qcheck ~count:120 "reconstructed schedule is feasible and optimal"
    (QCheck.pair
       (Test_util.small_trace_arbitrary ~max_universe:8 ~max_len:20 ())
       QCheck.(int_range 1 5))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let cost, schedule = Exact_gc.solve_schedule ~k trace in
      cost = Exact_gc.solve ~k trace
      &&
      match Schedule.check trace ~capacity:k schedule with
      | Ok misses -> misses = cost
      | Error _ -> false)

(* --------------------------------------------------------------- Varsize *)

let test_varsize_hand_instance () =
  (* Two size-2 items and one size-1, capacity 3: can hold one big + small. *)
  let inst =
    { Varsize.sizes = [| 2; 2; 1 |]; capacity = 3; requests = [| 0; 1; 2; 0; 1; 2 |] }
  in
  (* Each of 0 and 1 must be reloaded on every request (they cannot
     coexist); 2 can stay: 4 + cold miss on 2 = 5. *)
  Alcotest.(check int) "optimal" 5 (Varsize.exact inst)

let test_varsize_fits () =
  let inst =
    { Varsize.sizes = [| 1; 2 |]; capacity = 3; requests = [| 0; 1; 0; 1 |] }
  in
  Alcotest.(check int) "cold only" 2 (Varsize.exact inst)

let test_varsize_validation () =
  (match
     Varsize.validate
       { Varsize.sizes = [| 5 |]; capacity = 3; requests = [| 0 |] }
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized item accepted");
  match
    Varsize.validate { Varsize.sizes = [| 1 |]; capacity = 3; requests = [| 7 |] }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range request accepted"

(* -------------------------------------------------------------- Reduction *)

let qcheck_reduction_preserves_optimum =
  Test_util.qcheck ~count:25 "Theorem 1 reduction preserves optimal cost"
    QCheck.(
      make
        ~print:(fun (seed, n_items, cap, len) ->
          Printf.sprintf "seed=%d items=%d cap=%d len=%d" seed n_items cap len)
        Gen.(
          let* seed = int_range 0 10_000 in
          let* n_items = int_range 1 3 in
          let* cap = int_range 2 4 in
          let* len = int_range 1 6 in
          return (seed, n_items, cap, len)))
    (fun (seed, n_items, cap, len) ->
      let inst =
        Varsize.random_instance (Rng.create seed) ~n_items ~max_size:3
          ~capacity:cap ~length:len
      in
      match Reduction.verify inst with Ok _ -> true | Error _ -> false)

let test_reduction_structure () =
  let inst =
    { Varsize.sizes = [| 2; 3 |]; capacity = 3; requests = [| 0; 1 |] }
  in
  let r = Reduction.reduce inst in
  (* Item 0 (size 2) -> 2*2 accesses; item 1 (size 3) -> 3*3. *)
  Alcotest.(check int) "trace length" (4 + 9) (Trace.length r.Reduction.trace);
  Alcotest.(check int) "capacity" 3 r.Reduction.capacity;
  Alcotest.(check int) "active sets" 2 (Array.length r.Reduction.active_sets);
  Alcotest.(check int) "sizes" 3 (Array.length r.Reduction.active_sets.(1));
  (* Active sets are disjoint blocks. *)
  let blocks = r.Reduction.trace.Trace.blocks in
  Alcotest.(check bool) "same block within set" true
    (Block_map.same_block blocks r.Reduction.active_sets.(1).(0)
       r.Reduction.active_sets.(1).(2));
  Alcotest.(check bool) "different blocks across sets" false
    (Block_map.same_block blocks r.Reduction.active_sets.(0).(0)
       r.Reduction.active_sets.(1).(0))

(* -------------------------------------------------------------- Schedule *)

let test_schedule_record_and_check () =
  let trace =
    Generators.uniform_random (rng ()) ~n:500 ~universe:40 ~block_size:4
  in
  let p = Gc_cache.Lru.create ~k:10 in
  let sched, metrics = Schedule.record p trace in
  Alcotest.(check int) "cost = misses" metrics.Gc_cache.Metrics.misses
    (Schedule.cost sched);
  match Schedule.check trace ~capacity:10 sched with
  | Ok misses -> Alcotest.(check int) "replay agrees" metrics.Gc_cache.Metrics.misses misses
  | Error e -> Alcotest.failf "valid schedule rejected: %s" e

let test_schedule_check_catches_violations () =
  let trace = Test_util.trace_of (2, [| 0; 1; 2 |]) in
  (* Missing load. *)
  let bad1 = [| { Schedule.load = []; evict = [] };
                { Schedule.load = [ 1 ]; evict = [] };
                { Schedule.load = [ 2 ]; evict = [] } |] in
  (match Schedule.check trace ~capacity:4 bad1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing load accepted");
  (* Foreign-block load. *)
  let bad2 = [| { Schedule.load = [ 0; 2 ]; evict = [] };
                { Schedule.load = [ 1 ]; evict = [] };
                { Schedule.load = [] ; evict = [] } |] in
  (match Schedule.check trace ~capacity:4 bad2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign load accepted");
  (* Over capacity. *)
  let bad3 = [| { Schedule.load = [ 0; 1 ]; evict = [] };
                { Schedule.load = [] ; evict = [] };
                { Schedule.load = [ 2; 3 ]; evict = [] } |] in
  (match Schedule.check trace ~capacity:3 bad3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over capacity accepted");
  (* Evicting an uncached item. *)
  let bad4 = [| { Schedule.load = [ 0 ]; evict = [ 5 ] };
                { Schedule.load = [ 1 ]; evict = [] };
                { Schedule.load = [ 2 ]; evict = [] } |] in
  match Schedule.check trace ~capacity:4 bad4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "phantom evict accepted"

let test_schedule_valid_hand_built () =
  let trace = Test_util.trace_of (2, [| 0; 1; 0; 2 |]) in
  let s = [| { Schedule.load = [ 0; 1 ]; evict = [] };
             { Schedule.load = []; evict = [] };
             { Schedule.load = []; evict = [] };
             { Schedule.load = [ 2 ]; evict = [ 1 ] } |] in
  match Schedule.check trace ~capacity:2 s with
  | Ok misses -> Alcotest.(check int) "two misses" 2 misses
  | Error e -> Alcotest.failf "rejected: %s" e

let test_schedule_of_layered_policy_checks () =
  (* IBLP holds duplicates internally but its externally visible cache
     content is a set; its recorded schedule must replay cleanly at
     capacity k. *)
  let trace =
    Generators.spatial_mix (rng ()) ~n:5_000 ~universe:1024 ~block_size:8
      ~p_spatial:0.6
  in
  let p = Gc_cache.Iblp.create ~i:64 ~b:64 ~blocks:trace.Trace.blocks () in
  let sched, metrics = Schedule.record p trace in
  match Schedule.check trace ~capacity:128 sched with
  | Ok misses ->
      Alcotest.(check int) "misses agree" metrics.Gc_cache.Metrics.misses misses
  | Error e -> Alcotest.failf "IBLP schedule rejected: %s" e

let test_belady_known_value () =
  (* Cyclic scan of k+1 items: LRU misses everything, Belady keeps k-1 of
     them and misses only on the rotating gap. *)
  let k = 4 in
  let trace = Generators.sequential ~n:50 ~universe:(k + 1) ~block_size:1 in
  let lru = Test_util.run_misses (Gc_cache.Lru.create ~k) trace in
  Alcotest.(check int) "lru thrashes" 50 lru;
  let belady = Belady.cost ~k trace in
  (* Belady misses 5 cold + roughly one per k-1 thereafter. *)
  Alcotest.(check bool)
    (Printf.sprintf "belady %d ~ %d" belady (5 + ((50 - 5) / k)))
    true
    (belady <= 5 + ((50 - 5) / (k - 1)) + 1)

(* ------------------------------------------------------------ Opt_bounds *)

let qcheck_opt_bounds_bracket_exact =
  Test_util.qcheck ~count:100 "window lower bound <= exact OPT <= clairvoyant"
    (QCheck.pair
       (Test_util.small_trace_arbitrary ~max_universe:9 ~max_len:24 ())
       QCheck.(int_range 1 5))
    (fun ((bs, reqs), h) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let exact = Exact_gc.solve ~k:h trace in
      Opt_bounds.best_window_bound trace ~h <= exact
      && exact <= Clairvoyant.cost ~k:h trace)

let test_opt_bounds_compulsory () =
  let trace = Test_util.trace_of (2, [| 0; 2; 4; 0; 2; 4 |]) in
  Alcotest.(check int) "distinct blocks" 3 (Opt_bounds.compulsory trace)

let test_opt_bounds_window_counts () =
  (* 6 distinct blocks per window of 6, h = 2: at least 4 misses/window. *)
  let reqs = Array.init 24 (fun i -> 2 * (i mod 6)) in
  let trace = Test_util.trace_of (1, reqs) in
  Alcotest.(check int) "window bound" 16
    (Opt_bounds.window_bound trace ~h:2 ~window:6)

let test_ratio_interval_brackets () =
  let trace =
    Gc_trace.Generators.spatial_mix (rng ()) ~n:20_000 ~universe:4096
      ~block_size:16 ~p_spatial:0.5
  in
  let online = Test_util.run_misses (Gc_cache.Lru.create ~k:256) trace in
  let lo, hi = Opt_bounds.ratio_interval ~online trace ~h:64 in
  Alcotest.(check bool) "lo <= hi" true (lo <= hi);
  Alcotest.(check bool) "lo >= 1-ish" true (lo > 0.5)

(* ------------------------------------- adversary OPT-cost certification *)

let test_certify_thm2_opt () =
  let k = 64 and h = 16 and block_size = 4 in
  let lru = Gc_cache.Lru.create ~k in
  let c = Gc_cache.Attack.item_cache lru ~k ~h ~block_size ~cycles:12 in
  let claimed = c.Adversary.opt_misses + c.Adversary.warmup_opt_misses in
  let clair = Clairvoyant.cost ~k:h c.Adversary.trace in
  (* The clairvoyant heuristic is a real size-h schedule; it should land
     within a small factor of the proof's claimed OPT cost. *)
  Alcotest.(check bool)
    (Printf.sprintf "clairvoyant %d within 1.25x of claimed %d" clair claimed)
    true
    (float_of_int clair <= 1.25 *. float_of_int claimed);
  (* And the claimed cost can never beat the true optimum: on this size we
     cannot run Exact_gc, but clairvoyant also upper-bounds OPT, giving a
     machine-checked certificate for the measured ratio's denominator. *)
  let sched, _ = Schedule.record (Clairvoyant.create ~k:h c.Adversary.trace) c.Adversary.trace in
  match Schedule.check c.Adversary.trace ~capacity:h sched with
  | Ok misses -> Alcotest.(check int) "schedule cost" clair misses
  | Error e -> Alcotest.failf "clairvoyant schedule invalid: %s" e

let test_certify_thm3_opt () =
  let k = 64 and h = 6 and block_size = 8 in
  let bl = Gc_cache.Block_lru.create ~k ~blocks:(Block_map.uniform ~block_size) in
  let c = Gc_cache.Attack.block_cache bl ~k ~h ~block_size ~cycles:12 in
  let claimed = c.Adversary.opt_misses + c.Adversary.warmup_opt_misses in
  let clair = Clairvoyant.cost ~k:h c.Adversary.trace in
  Alcotest.(check bool) "certified" true
    (float_of_int clair <= 1.25 *. float_of_int claimed)

let test_certify_small_thm2_exactly () =
  (* Small enough for the exact solver: the claimed OPT cost must be
     achievable (exact <= claimed). *)
  let k = 12 and h = 4 and block_size = 2 in
  let lru = Gc_cache.Lru.create ~k in
  let c = Gc_cache.Attack.item_cache lru ~k ~h ~block_size ~cycles:2 in
  let claimed = c.Adversary.opt_misses + c.Adversary.warmup_opt_misses in
  let exact = Exact_gc.solve ~k:h c.Adversary.trace in
  Alcotest.(check bool)
    (Printf.sprintf "exact %d <= claimed %d" exact claimed)
    true (exact <= claimed)

let () =
  Alcotest.run "gc_offline"
    [
      ( "next_use",
        [ qcheck_next_use; Alcotest.test_case "after" `Quick test_next_use_after ] );
      ( "belady",
        [
          qcheck_belady_beats_online_item_policies;
          qcheck_belady_equals_exact_when_b1;
          Alcotest.test_case "rejects wrong trace" `Quick test_belady_wrong_trace_rejected;
        ] );
      ( "block_belady",
        [
          qcheck_block_belady_beats_block_lru;
          Alcotest.test_case "scan" `Quick test_block_belady_scan;
        ] );
      ( "clairvoyant",
        [
          qcheck_exact_at_most_clairvoyant;
          Alcotest.test_case "loads useful siblings" `Quick test_clairvoyant_loads_useful_siblings;
          Alcotest.test_case "skips useless siblings" `Quick test_clairvoyant_skips_useless_siblings;
          Alcotest.test_case "gap statistics" `Quick test_clairvoyant_gap_statistics;
        ] );
      ( "exact_gc",
        [
          Alcotest.test_case "simple cases" `Quick test_exact_simple_cases;
          qcheck_exact_monotone_in_k;
          qcheck_exact_lower_bounds_online;
          test_exact_at_least_distinct_blocks;
          qcheck_solve_schedule_is_valid_and_optimal;
        ] );
      ( "varsize",
        [
          Alcotest.test_case "hand instance" `Quick test_varsize_hand_instance;
          Alcotest.test_case "fits" `Quick test_varsize_fits;
          Alcotest.test_case "validation" `Quick test_varsize_validation;
        ] );
      ( "reduction",
        [
          qcheck_reduction_preserves_optimum;
          Alcotest.test_case "structure" `Quick test_reduction_structure;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "record and check" `Quick test_schedule_record_and_check;
          Alcotest.test_case "catches violations" `Quick test_schedule_check_catches_violations;
          Alcotest.test_case "hand built" `Quick test_schedule_valid_hand_built;
          Alcotest.test_case "layered policy schedule" `Quick
            test_schedule_of_layered_policy_checks;
          Alcotest.test_case "belady known value" `Quick test_belady_known_value;
        ] );
      ( "opt_bounds",
        [
          qcheck_opt_bounds_bracket_exact;
          Alcotest.test_case "compulsory" `Quick test_opt_bounds_compulsory;
          Alcotest.test_case "window counts" `Quick test_opt_bounds_window_counts;
          Alcotest.test_case "ratio interval" `Quick test_ratio_interval_brackets;
        ] );
      ( "certification",
        [
          Alcotest.test_case "thm2 OPT certified" `Quick test_certify_thm2_opt;
          Alcotest.test_case "thm3 OPT certified" `Quick test_certify_thm3_opt;
          Alcotest.test_case "small thm2 exact" `Quick test_certify_small_thm2_exactly;
        ] );
    ]
