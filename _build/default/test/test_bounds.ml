open Gc_bounds

let bb = 64.

(* -------------------------------------------------------- Sleator-Tarjan *)

let test_st_formula () =
  (* k / (k - h + 1) = 2 exactly at k = 2 (h - 1). *)
  Test_util.check_float ~eps:1e-9 "k=2(h-1)" 2.
    (Sleator_tarjan.competitive_ratio ~k:200. ~h:101.);
  Test_util.check_float ~eps:1e-9 "k=h" 100.
    (Sleator_tarjan.competitive_ratio ~k:100. ~h:100.)

let test_st_inverse () =
  let h = 50. in
  List.iter
    (fun ratio ->
      let k = Sleator_tarjan.augmentation_for_ratio ~ratio ~h in
      Test_util.check_rel ~rel:1e-9 "roundtrip" ratio
        (Sleator_tarjan.competitive_ratio ~k ~h))
    [ 1.5; 2.; 3.; 10. ]

(* ---------------------------------------------------------- lower bounds *)

let test_thm2_formula () =
  (* B (k - B + 1) / (k - h + 1) *)
  Test_util.check_float ~eps:1e-9 "thm2"
    (64. *. (1000. -. 64. +. 1.) /. (1000. -. 100. +. 1.))
    (Lower_bounds.item_cache ~k:1000. ~h:100. ~block_size:64.)

let test_thm3_formula_and_divergence () =
  Test_util.check_float ~eps:1e-9 "thm3" (1000. /. (1000. -. (64. *. 9.)))
    (Lower_bounds.block_cache ~k:1000. ~h:10. ~block_size:64.);
  Alcotest.(check bool) "diverges when k <= B(h-1)" true
    (Lower_bounds.block_cache ~k:640. ~h:11. ~block_size:64. = infinity)

let test_thm4_extremes () =
  let k = 1000. and h = 100. in
  (* a = B reproduces the Item-Cache bound. *)
  Test_util.check_rel ~rel:1e-9 "a=B is thm2"
    (Lower_bounds.item_cache ~k ~h ~block_size:bb)
    (Lower_bounds.general ~a:bb ~k ~h ~block_size:bb);
  (* a = 1: 1 + B (h-1) / (k-h+1). *)
  Test_util.check_rel ~rel:1e-9 "a=1"
    (((k -. h +. 1.) +. (bb *. (h -. 1.))) /. (k -. h +. 1.))
    (Lower_bounds.general ~a:1. ~k ~h ~block_size:bb)

let qcheck_best_is_min_over_a =
  Test_util.qcheck ~count:200 "best = min over integer a in [1, B]"
    QCheck.(
      make
        Gen.(
          let* h = int_range 2 500 in
          let* k = int_range h (h * 100) in
          let* b = int_range 2 64 in
          return (float_of_int k, float_of_int h, float_of_int b)))
    (fun (k, h, block_size) ->
      let best = Lower_bounds.best ~k ~h ~block_size in
      let grid = ref infinity in
      let a = ref 1. in
      while !a <= Float.min block_size h do
        grid := Float.min !grid (Lower_bounds.general ~a:!a ~k ~h ~block_size);
        a := !a +. 1.
      done;
      Float.abs (best -. !grid) <= 1e-9 *. Float.max 1. !grid)

let test_lower_at_least_sleator_tarjan () =
  (* Spatial locality can only widen the online/offline gap. *)
  List.iter
    (fun (k, h) ->
      Alcotest.(check bool) "GC lower >= ST" true
        (Lower_bounds.best ~k ~h ~block_size:bb
        >= Sleator_tarjan.competitive_ratio ~k ~h -. 1e-9))
    [ (1000., 100.); (10_000., 5000.); (1_280_000., 20_000.) ]

(* ----------------------------------------------------------- IBLP upper *)

let test_thm5 () =
  Test_util.check_float ~eps:1e-9 "i/(i-h)" 2. (Iblp_upper.temporal ~i:200. ~h:100.);
  Alcotest.(check bool) "diverges" true (Iblp_upper.temporal ~i:100. ~h:100. = infinity)

let test_thm6 () =
  (* min(B, (b + 2Bh - B)/(b + B)) *)
  Test_util.check_float ~eps:1e-9 "formula"
    ((1000. +. (2. *. bb *. 10.) -. bb) /. (1000. +. bb))
    (Iblp_upper.spatial ~b:1000. ~block_size:bb ~h:10.);
  Test_util.check_float ~eps:1e-9 "capped at B" bb
    (Iblp_upper.spatial ~b:100. ~block_size:bb ~h:1_000_000.)

let test_thm7_continuity_at_threshold () =
  let b = 2000. and h = 50. in
  let thr = Iblp_upper.combined_threshold ~b ~block_size:bb in
  let below = Iblp_upper.combined ~i:(thr -. 1e-6) ~b ~block_size:bb ~h in
  let above = Iblp_upper.combined ~i:(thr +. 1e-6) ~b ~block_size:bb ~h in
  Test_util.check_rel ~rel:1e-4 "continuous" below above

let qcheck_thm7_increasing_in_h =
  (* A stronger offline comparator can only worsen the guaranteed ratio.
     (The bound is NOT monotone in i: the printed expression is loose for
     oversized item layers, see the LP cross-check tests.) *)
  Test_util.qcheck ~count:100 "thm7 monotone in h"
    QCheck.(
      make
        Gen.(
          let* h = float_range 10. 200. in
          let* i = float_range 300. 5000. in
          let* b = float_range 64. 5000. in
          return (i, b, h)))
    (fun (i, b, h) ->
      Iblp_upper.combined ~i ~b ~block_size:bb ~h:(h +. 20.)
      >= Iblp_upper.combined ~i ~b ~block_size:bb ~h -. 1e-9)

(* ----------------------------------------------------------- partitioning *)

let qcheck_partitioning_matches_numeric =
  Test_util.qcheck ~count:40 "closed-form optimum = numeric argmin"
    QCheck.(
      make
        Gen.(
          let* h = float_range 50. 5000. in
          let* mult = float_range 2.5 200. in
          return (h *. mult, h)))
    (fun (k, h) ->
      let closed = Partitioning.optimal_ratio ~k ~h ~block_size:bb in
      let _, numeric = Partitioning.numeric_best_split ~k ~h ~block_size:bb in
      (* Numeric search is over the same objective; closed form must match
         (small tolerance for the grid). *)
      Float.abs (closed -. numeric) /. closed < 5e-3)

let test_partitioning_small_k_is_item_cache () =
  let h = 1000. and k = 1100. in
  Alcotest.(check bool) "below threshold" true
    (k < Partitioning.item_layer_threshold ~h ~block_size:bb);
  Test_util.check_float ~eps:1e-9 "i = k" k
    (Partitioning.optimal_i ~k ~h ~block_size:bb);
  Test_util.check_rel ~rel:1e-9 "item-cache ratio"
    (((2. *. bb *. k) -. (bb *. bb) -. bb) /. (2. *. (k -. h)))
    (Partitioning.optimal_ratio ~k ~h ~block_size:bb)

let test_partitioning_sane_split () =
  let k = 1_280_000. and h = 10_000. in
  let i = Partitioning.optimal_i ~k ~h ~block_size:bb in
  Alcotest.(check bool) "h < i < k" true (i > h && i < k)

let test_upper_at_least_lower () =
  (* The IBLP upper bound must dominate the problem's lower bound. *)
  let k = 1_280_000. in
  List.iter
    (fun h ->
      let lower = Lower_bounds.best ~k ~h ~block_size:bb in
      let upper = Partitioning.optimal_ratio ~k ~h ~block_size:bb in
      Alcotest.(check bool)
        (Printf.sprintf "h=%g: lower %.3f <= upper %.3f" h lower upper)
        true
        (lower <= upper +. 1e-9))
    [ 10.; 100.; 1000.; 10_000.; 100_000.; 500_000. ]

let test_large_cache_approximation () =
  (* k >> h >> B: the simplified §5.3 form tracks the exact one. *)
  let k = 1_280_000. and h = 10_000. in
  let exact = Partitioning.optimal_ratio ~k ~h ~block_size:bb in
  let approx = Partitioning.large_cache_ratio ~k ~h ~block_size:bb in
  Test_util.check_rel ~rel:0.15 "approximation" exact approx

(* ------------------------------------------------------------ locality fn *)

let test_power_roundtrip () =
  let f = Locality_fn.power ~coeff:2. ~p:3. () in
  List.iter
    (fun n ->
      Test_util.check_rel ~rel:1e-9 "inv . f = id" n
        (Locality_fn.inv f (Locality_fn.apply f n)))
    [ 1.; 10.; 1000.; 123456. ]

let test_scaled () =
  let f = Locality_fn.power ~p:2. () in
  let g = Locality_fn.scaled f ~factor:8. in
  Test_util.check_rel ~rel:1e-9 "g = f/8"
    (Locality_fn.apply f 100. /. 8.)
    (Locality_fn.apply g 100.);
  Test_util.check_rel ~rel:1e-9 "g_inv" 100.
    (Locality_fn.inv g (Locality_fn.apply g 100.))

let test_spatial_pair_validation () =
  (match Locality_fn.spatial_pair ~p:2. ~ratio:100. ~block_size:64. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ratio > B accepted");
  match Locality_fn.power ~p:0.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p < 1 accepted"

(* ------------------------------------------------------------ fault rate *)

let test_fault_rate_asymptotics () =
  (* f = n^(1/2), g = f: lower ~ 1/h, item UB ~ 1/i, block UB ~ B/b. *)
  let size = 100_000. in
  let f, g = Locality_fn.spatial_pair ~p:2. ~ratio:1. ~block_size:bb in
  Test_util.check_rel ~rel:0.02 "lower ~ 1/h" (1. /. size)
    (Fault_rate.lower ~k:size ~f ~g);
  Test_util.check_rel ~rel:0.02 "item ~ 1/i" (1. /. size)
    (Fault_rate.item_layer ~i:size ~f);
  Test_util.check_rel ~rel:0.02 "block ~ B/b" (bb /. size)
    (Fault_rate.block_layer ~b:size ~block_size:bb ~g)

let test_fault_rate_max_spatial () =
  (* g = f/B: lower ~ 1/(Bh), block UB ~ 1/(Bb). *)
  let size = 100_000. in
  let f, g = Locality_fn.spatial_pair ~p:2. ~ratio:bb ~block_size:bb in
  Test_util.check_rel ~rel:0.02 "lower ~ 1/(Bh)"
    (1. /. (bb *. size))
    (Fault_rate.lower ~k:size ~f ~g);
  Test_util.check_rel ~rel:0.05 "block ~ 1/(Bb)"
    (1. /. (bb *. size))
    (Fault_rate.block_layer ~b:size ~block_size:bb ~g)

let qcheck_fault_rate_monotone =
  Test_util.qcheck ~count:100 "fault-rate UBs decrease with layer size"
    QCheck.(
      make
        Gen.(
          let* p = float_range 1.5 4. in
          let* size = float_range 1000. 100_000. in
          return (p, size)))
    (fun (p, size) ->
      let f, g = Locality_fn.spatial_pair ~p ~ratio:4. ~block_size:bb in
      Fault_rate.item_layer ~i:(2. *. size) ~f
      <= Fault_rate.item_layer ~i:size ~f +. 1e-12
      && Fault_rate.block_layer ~b:(2. *. size) ~block_size:bb ~g
         <= Fault_rate.block_layer ~b:size ~block_size:bb ~g +. 1e-12)

let test_iblp_fault_rate_is_min () =
  let f, g = Locality_fn.spatial_pair ~p:2. ~ratio:8. ~block_size:bb in
  let i = 5000. and b = 5000. in
  Test_util.check_float ~eps:1e-12 "min of layers"
    (Float.min
       (Fault_rate.item_layer ~i ~f)
       (Fault_rate.block_layer ~b ~block_size:bb ~g))
    (Fault_rate.iblp ~i ~b ~block_size:bb ~f ~g)

(* ------------------------------------------------------------- randomized *)

let test_harmonic () =
  Test_util.check_float ~eps:1e-12 "H_1" 1. (Randomized.harmonic 1);
  Test_util.check_float ~eps:1e-12 "H_4" (25. /. 12.) (Randomized.harmonic 4);
  Alcotest.(check bool) "H_k ~ ln k + gamma" true
    (Float.abs (Randomized.harmonic 100_000 -. (log 100_000. +. 0.5772157))
    < 1e-4)

let test_randomized_bounds_ordering () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "lower <= upper" true
        (Randomized.randomized_lower ~k <= Randomized.marking_upper ~k);
      (* Randomization helps: H_k is far below the deterministic k. *)
      Alcotest.(check bool) "beats deterministic" true
        (Randomized.marking_upper ~k < float_of_int k || k <= 10))
    [ 2; 8; 64; 1024 ]

(* --------------------------------------------------------------- Table 1 *)

let rows = Table1.rows ~h:10_000. ~block_size:bb

let get_row name = List.find (fun r -> r.Table1.setting = name) rows

let test_table1_constant_augmentation () =
  let row = get_row "Constant Augmentation" in
  let st = row.Table1.point Table1.St in
  Test_util.check_rel ~rel:1e-3 "ST = 2" 2. st.Table1.ratio;
  let lower = row.Table1.point Table1.Gc_lower in
  Test_util.check_rel ~rel:0.05 "lower ~ B" bb lower.Table1.ratio;
  let upper = row.Table1.point Table1.Gc_upper in
  Test_util.check_rel ~rel:0.05 "upper ~ 2B" (2. *. bb) upper.Table1.ratio

let test_table1_meeting_point () =
  let row = get_row "Ratio = Augmentation" in
  List.iter
    (fun (family, approx) ->
      let p = row.Table1.point family in
      Test_util.check_rel ~rel:1e-6 "ratio = augmentation" p.Table1.ratio
        p.Table1.augmentation;
      (* The paper's sqrt approximations hold within ~25%. *)
      Test_util.check_rel ~rel:0.25 "matches paper approximation" approx
        p.Table1.ratio)
    [ (Table1.St, 2.); (Table1.Gc_lower, sqrt bb); (Table1.Gc_upper, sqrt (2. *. bb)) ]

let test_table1_constant_ratio () =
  let row = get_row "Constant Ratio" in
  let lower = row.Table1.point Table1.Gc_lower in
  Test_util.check_rel ~rel:1e-6 "lower ratio 2" 2. lower.Table1.ratio;
  (* k ~ Bh. *)
  Test_util.check_rel ~rel:0.05 "lower augmentation ~ B" bb lower.Table1.augmentation;
  let upper = row.Table1.point Table1.Gc_upper in
  Test_util.check_rel ~rel:1e-6 "upper ratio 3" 3. upper.Table1.ratio;
  Test_util.check_rel ~rel:0.10 "upper augmentation ~ B" bb upper.Table1.augmentation

(* --------------------------------------------------------------- Table 2 *)

let test_table2_p2 () =
  let size = 100_000. in
  let rows = Table2.rows ~p:2. ~block_size:bb ~size in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  let r1 = List.nth rows 0 in
  (* No spatial locality: item layer optimal, block layer B times worse. *)
  Test_util.check_rel ~rel:0.02 "row1 lower ~ 1/h" (1. /. size) r1.Table2.lower;
  Test_util.check_rel ~rel:0.02 "row1 item ~ 1/i" (1. /. size) r1.Table2.item_ub;
  Test_util.check_rel ~rel:0.05 "row1 block ~ B/b" (bb /. size) r1.Table2.block_ub;
  let r2 = List.nth rows 1 in
  (* Largest gap: both layers meet at 1/i. *)
  Test_util.check_rel ~rel:0.05 "row2 item = block" r2.Table2.item_ub r2.Table2.block_ub;
  let r3 = List.nth rows 2 in
  Test_util.check_rel ~rel:0.05 "row3 lower ~ 1/(Bh)" (1. /. (bb *. size)) r3.Table2.lower;
  Test_util.check_rel ~rel:0.05 "row3 block ~ 1/(Bb)" (1. /. (bb *. size)) r3.Table2.block_ub

let test_table2_gap_bounded_by_paper () =
  (* Section 7.3: with i = b = h, the IBLP upper bound is within
     B^(1 - 1/p) of the lower bound, approaching B as p grows. *)
  let size = 1_000_000. in
  List.iter
    (fun p ->
      let rows = Table2.rows ~p ~block_size:bb ~size in
      List.iter
        (fun r ->
          let iblp = Float.min r.Table2.item_ub r.Table2.block_ub in
          let gap = iblp /. r.Table2.lower in
          Alcotest.(check bool)
            (Printf.sprintf "p=%g gap %.2f <= B" p gap)
            true
            (gap <= bb *. 1.05))
        rows)
    [ 2.; 3.; 4. ]

(* --------------------------------------------------------------- figures *)

let test_figure3_orderings () =
  let k = 1_280_000. in
  let hs = Figures.default_hs ~k ~steps:40 in
  let points = Figures.figure3 ~k ~block_size:bb ~hs in
  List.iter
    (fun p ->
      Alcotest.(check bool) "ST <= GC lower" true
        (p.Figures.sleator_tarjan <= p.Figures.gc_lower +. 1e-9);
      Alcotest.(check bool) "GC lower <= IBLP upper" true
        (p.Figures.gc_lower <= p.Figures.iblp_upper +. 1e-9);
      Alcotest.(check bool) "GC lower <= item-cache lower" true
        (p.Figures.gc_lower <= p.Figures.item_cache_lower +. 1e-9))
    points

let test_figure3_crossovers () =
  (* Paper: IBLP beats the Item Cache from k ~ 3h up, and beats the Block
     Cache below k ~ 4Bh. *)
  let k = 1_280_000. in
  let at h = List.hd (Figures.figure3 ~k ~block_size:bb ~hs:[ h ]) in
  let p = at (k /. 10.) in
  Alcotest.(check bool) "IBLP < item cache at k = 10h" true
    (p.Figures.iblp_upper < p.Figures.item_cache_lower);
  let q = at (k /. bb) in
  Alcotest.(check bool) "IBLP < block cache at k = Bh" true
    (q.Figures.iblp_upper < q.Figures.block_cache_lower);
  (* Near k ~ h the Item Cache is competitive with IBLP. *)
  let r = at (k /. 1.5) in
  Alcotest.(check bool) "item cache fine at small augmentation" true
    (r.Figures.item_cache_lower <= r.Figures.iblp_upper *. 1.5)

let test_figure6_fixed_splits_degrade () =
  let k = 1_280_000. in
  let h0 = 10_000. in
  let i0 = Partitioning.optimal_i ~k ~h:h0 ~block_size:bb in
  let hs = [ h0; 10. *. h0 ] in
  let points = Figures.figure6 ~k ~block_size:bb ~fixed_is:[ i0 ] ~hs in
  let at_h0 = List.nth points 0 and at_10h0 = List.nth points 1 in
  (* At its design point the fixed split matches the optimum... *)
  Test_util.check_rel ~rel:1e-6 "optimal at design point" at_h0.Figures.optimal_split
    (snd (List.hd at_h0.Figures.fixed_splits));
  (* ... and for larger h it degrades relative to re-optimizing. *)
  Alcotest.(check bool) "degrades for larger h" true
    (snd (List.hd at_10h0.Figures.fixed_splits)
    > at_10h0.Figures.optimal_split *. 1.05)

let test_default_hs () =
  let hs = Figures.default_hs ~k:1000. ~steps:10 in
  Alcotest.(check bool) "ascending" true
    (List.sort compare hs = hs);
  Alcotest.(check bool) "range" true
    (List.hd hs >= 2. && List.nth hs (List.length hs - 1) <= 500.)

let () =
  Alcotest.run "gc_bounds"
    [
      ( "sleator_tarjan",
        [
          Alcotest.test_case "formula" `Quick test_st_formula;
          Alcotest.test_case "inverse" `Quick test_st_inverse;
        ] );
      ( "lower_bounds",
        [
          Alcotest.test_case "thm2" `Quick test_thm2_formula;
          Alcotest.test_case "thm3" `Quick test_thm3_formula_and_divergence;
          Alcotest.test_case "thm4 extremes" `Quick test_thm4_extremes;
          qcheck_best_is_min_over_a;
          Alcotest.test_case "dominates ST" `Quick test_lower_at_least_sleator_tarjan;
        ] );
      ( "iblp_upper",
        [
          Alcotest.test_case "thm5" `Quick test_thm5;
          Alcotest.test_case "thm6" `Quick test_thm6;
          Alcotest.test_case "thm7 continuity" `Quick test_thm7_continuity_at_threshold;
          qcheck_thm7_increasing_in_h;
        ] );
      ( "partitioning",
        [
          qcheck_partitioning_matches_numeric;
          Alcotest.test_case "small k = item cache" `Quick test_partitioning_small_k_is_item_cache;
          Alcotest.test_case "sane split" `Quick test_partitioning_sane_split;
          Alcotest.test_case "upper >= lower" `Quick test_upper_at_least_lower;
          Alcotest.test_case "large-cache approximation" `Quick test_large_cache_approximation;
        ] );
      ( "locality_fn",
        [
          Alcotest.test_case "power roundtrip" `Quick test_power_roundtrip;
          Alcotest.test_case "scaled" `Quick test_scaled;
          Alcotest.test_case "validation" `Quick test_spatial_pair_validation;
        ] );
      ( "fault_rate",
        [
          Alcotest.test_case "asymptotics" `Quick test_fault_rate_asymptotics;
          Alcotest.test_case "max spatial" `Quick test_fault_rate_max_spatial;
          qcheck_fault_rate_monotone;
          Alcotest.test_case "iblp = min" `Quick test_iblp_fault_rate_is_min;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "harmonic" `Quick test_harmonic;
          Alcotest.test_case "ordering" `Quick test_randomized_bounds_ordering;
        ] );
      ( "table1",
        [
          Alcotest.test_case "constant augmentation" `Quick test_table1_constant_augmentation;
          Alcotest.test_case "meeting point" `Quick test_table1_meeting_point;
          Alcotest.test_case "constant ratio" `Quick test_table1_constant_ratio;
        ] );
      ( "table2",
        [
          Alcotest.test_case "p = 2 rows" `Quick test_table2_p2;
          Alcotest.test_case "gap bounded by B" `Quick test_table2_gap_bounded_by_paper;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 3 orderings" `Quick test_figure3_orderings;
          Alcotest.test_case "figure 3 crossovers" `Quick test_figure3_crossovers;
          Alcotest.test_case "figure 6 degradation" `Quick test_figure6_fixed_splits_degrade;
          Alcotest.test_case "default hs" `Quick test_default_hs;
        ] );
    ]
