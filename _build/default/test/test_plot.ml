open Gc_plot

let line s = String.split_on_char '\n' s

let test_render_basic () =
  let chart =
    Ascii_plot.render ~width:20 ~height:5
      [
        {
          Ascii_plot.marker = '*';
          label = "identity";
          points = List.init 10 (fun i -> (float_of_int i, float_of_int i));
        };
      ]
  in
  Alcotest.(check bool) "contains marker" true (String.contains chart '*');
  Alcotest.(check bool) "contains legend" true
    (List.exists (fun l -> l = "  * = identity") (line chart));
  (* Monotone series: the top row holds the largest x marker, bottom the
     smallest. *)
  let rows = List.filter (fun l -> String.length l > 2 && l.[2] = '|') (line chart) in
  Alcotest.(check int) "height" 5 (List.length rows)

let test_render_log_axes () =
  let chart =
    Ascii_plot.render ~width:30 ~height:6 ~x_scale:Ascii_plot.Log10
      ~y_scale:Ascii_plot.Log10
      [
        {
          Ascii_plot.marker = 'o';
          label = "powers";
          points = [ (1., 1.); (10., 10.); (100., 100.); (1000., 1000.) ];
        };
      ]
  in
  (* On log-log axes a power law is a straight diagonal: each marker sits
     in a distinct row AND column. *)
  let rows =
    List.filter
      (fun l ->
        String.length l > 3 && String.sub l 0 3 = "  |" && String.contains l 'o')
      (line chart)
  in
  Alcotest.(check int) "4 marker rows" 4 (List.length rows);
  Alcotest.(check bool) "log annotation" true
    (List.exists
       (fun l -> String.length l >= 5 && String.sub l 0 2 = "x:" &&
                 String.length l > 6 && String.sub l (String.length l - 5) 5 = "(log)")
       (line chart))

let test_render_skips_infinite () =
  let chart =
    Ascii_plot.render ~width:10 ~height:4
      [
        {
          Ascii_plot.marker = 'x';
          label = "with infinities";
          points = [ (1., 2.); (2., infinity); (3., 4.) ];
        };
      ]
  in
  Alcotest.(check bool) "renders" true (String.contains chart 'x')

let test_render_rejects_empty () =
  match Ascii_plot.render [ { Ascii_plot.marker = 'x'; label = ""; points = [] } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted"

let test_render_rejects_nonpositive_log () =
  match
    Ascii_plot.render ~y_scale:Ascii_plot.Log10
      [ { Ascii_plot.marker = 'x'; label = ""; points = [ (1., 0.) ] } ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "log of 0 accepted"

let test_multiple_series () =
  let mk marker offset =
    {
      Ascii_plot.marker;
      label = Printf.sprintf "series %c" marker;
      points = List.init 5 (fun i -> (float_of_int i, float_of_int (i + offset)));
    }
  in
  let chart = Ascii_plot.render ~width:24 ~height:8 [ mk 'a' 0; mk 'b' 10 ] in
  Alcotest.(check bool) "both markers" true
    (String.contains chart 'a' && String.contains chart 'b')

(* -------------------------------------------------------------- occupancy *)

let test_occupancy_render () =
  let blocks = Gc_trace.Block_map.uniform ~block_size:2 in
  let trace = Gc_trace.Trace.of_list blocks [ 0; 1; 0 ] in
  let policy = Gc_offline.Clairvoyant.create ~k:2 trace in
  let sched, _ = Gc_offline.Schedule.record policy trace in
  let chart = Occupancy.render ~trace ~schedule:sched () in
  (* One miss (whole block loaded), then hits. *)
  Alcotest.(check bool) "miss marker" true (String.contains chart '*');
  Alcotest.(check bool) "request marker" true (String.contains chart '#');
  Alcotest.(check bool) "residency bar" true (String.contains chart '=')

let test_occupancy_rejects_bad_schedule () =
  let blocks = Gc_trace.Block_map.uniform ~block_size:2 in
  let trace = Gc_trace.Trace.of_list blocks [ 0; 1 ] in
  let bad = [| { Gc_offline.Schedule.load = [ 0 ]; evict = [] };
               { Gc_offline.Schedule.load = []; evict = [] } |] in
  match Occupancy.render ~trace ~schedule:bad () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unserved request accepted"

let test_occupancy_matches_misses () =
  let trace =
    Gc_trace.Generators.sequential ~n:24 ~universe:12 ~block_size:3
  in
  let policy = Gc_offline.Clairvoyant.create ~k:6 trace in
  let sched, metrics = Gc_offline.Schedule.record policy trace in
  let chart = Occupancy.render ~trace ~schedule:sched () in
  let stars =
    String.fold_left (fun acc c -> if c = '*' then acc + 1 else acc) 0 chart
  in
  (* One '*' per miss (the legend text contains one more). *)
  Alcotest.(check int) "miss markers" (metrics.Gc_cache.Metrics.misses + 1) stars

let () =
  Alcotest.run "gc_plot"
    [
      ( "occupancy",
        [
          Alcotest.test_case "render" `Quick test_occupancy_render;
          Alcotest.test_case "rejects bad schedule" `Quick test_occupancy_rejects_bad_schedule;
          Alcotest.test_case "matches misses" `Quick test_occupancy_matches_misses;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "basic" `Quick test_render_basic;
          Alcotest.test_case "log axes" `Quick test_render_log_axes;
          Alcotest.test_case "skips infinities" `Quick test_render_skips_infinite;
          Alcotest.test_case "rejects empty" `Quick test_render_rejects_empty;
          Alcotest.test_case "rejects log <= 0" `Quick test_render_rejects_nonpositive_log;
          Alcotest.test_case "multiple series" `Quick test_multiple_series;
        ] );
    ]
