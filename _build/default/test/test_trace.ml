open Gc_trace

let rng () = Rng.create 12345

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in inclusive range" true (v >= 5 && v <= 9)
  done;
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (v >= 0. && v < 2.5)
  done

let test_rng_invalid () =
  let r = rng () in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in r 3 2))

let test_rng_shuffle_permutation () =
  let r = rng () in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let r = rng () in
  let child = Rng.split r in
  let a = Array.init 20 (fun _ -> Rng.int64 r) in
  let b = Array.init 20 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_sample_without_replacement () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = 1 + Rng.int r 20 in
    let bound = n + Rng.int r 30 in
    let s = Rng.sample_without_replacement r n bound in
    Alcotest.(check int) "count" n (Array.length s);
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun v ->
        Alcotest.(check bool) "in range" true (v >= 0 && v < bound);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl v);
        Hashtbl.add tbl v ())
      s
  done;
  (* Dense case covers the whole range. *)
  let s = Rng.sample_without_replacement r 10 10 in
  Array.sort compare s;
  Alcotest.(check (array int)) "full coverage" (Array.init 10 (fun i -> i)) s

let test_rng_golden_values () =
  (* Pin the splitmix64 stream: reproducibility across refactors is part of
     the contract (every experiment cites a seed). *)
  let r = Rng.create 42 in
  Alcotest.(check (list int))
    "first draws at seed 42"
    [ 5; 91; 54; 60; 50 ]
    (List.init 5 (fun _ -> Rng.int r 100))

let test_rng_float_distribution () =
  let r = rng () in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.01)

(* ------------------------------------------------------------ Block_map *)

let test_uniform_block_map () =
  let m = Block_map.uniform ~block_size:4 in
  Alcotest.(check int) "B" 4 (Block_map.block_size m);
  Alcotest.(check int) "block of 0" 0 (Block_map.block_of m 0);
  Alcotest.(check int) "block of 3" 0 (Block_map.block_of m 3);
  Alcotest.(check int) "block of 4" 1 (Block_map.block_of m 4);
  Alcotest.(check (array int)) "items of 2" [| 8; 9; 10; 11 |] (Block_map.items_of m 2);
  Alcotest.(check bool) "same block" true (Block_map.same_block m 8 11);
  Alcotest.(check bool) "different block" false (Block_map.same_block m 7 8);
  Alcotest.(check bool) "uniform" true (Block_map.is_uniform m)

let test_singleton_block_map () =
  let m = Block_map.singleton in
  Alcotest.(check int) "B" 1 (Block_map.block_size m);
  for i = 0 to 20 do
    Alcotest.(check int) "identity" i (Block_map.block_of m i)
  done

let test_explicit_block_map () =
  let m = Block_map.of_blocks [ [| 3; 1 |]; [| 7 |]; [| 10; 11; 12 |] ] in
  Alcotest.(check int) "B = max size" 3 (Block_map.block_size m);
  Alcotest.(check int) "block of 1" 0 (Block_map.block_of m 1);
  Alcotest.(check int) "block of 3" 0 (Block_map.block_of m 3);
  Alcotest.(check int) "block of 7" 1 (Block_map.block_of m 7);
  Alcotest.(check (array int)) "items sorted" [| 1; 3 |] (Block_map.items_of m 0);
  Alcotest.(check bool) "not uniform" false (Block_map.is_uniform m);
  (* Unlisted items get stable fresh singleton blocks. *)
  let b99 = Block_map.block_of m 99 in
  Alcotest.(check int) "stable" b99 (Block_map.block_of m 99);
  Alcotest.(check (array int)) "singleton" [| 99 |] (Block_map.items_of m b99)

let test_explicit_rejects_duplicates () =
  Alcotest.check_raises "duplicate item"
    (Invalid_argument "Block_map.of_blocks: item in two blocks") (fun () ->
      ignore (Block_map.of_blocks [ [| 1; 2 |]; [| 2; 3 |] ]));
  Alcotest.check_raises "empty block"
    (Invalid_argument "Block_map.of_blocks: empty block") (fun () ->
      ignore (Block_map.of_blocks [ [||] ]))

(* ---------------------------------------------------------------- Trace *)

let test_trace_basics () =
  let m = Block_map.uniform ~block_size:2 in
  let t = Trace.of_list m [ 0; 1; 4; 1; 5 ] in
  Alcotest.(check int) "length" 5 (Trace.length t);
  Alcotest.(check int) "get" 4 (Trace.get t 2);
  Alcotest.(check int) "block_at" 2 (Trace.block_at t 2);
  Alcotest.(check int) "distinct items" 4 (Trace.distinct_items t);
  Alcotest.(check int) "distinct blocks" 2 (Trace.distinct_blocks t);
  Alcotest.(check (array int)) "universe" [| 0; 1; 4; 5 |] (Trace.universe t);
  Alcotest.(check int) "max item" 5 (Trace.max_item t);
  let t2 = Trace.concat [ t; t ] in
  Alcotest.(check int) "concat length" 10 (Trace.length t2);
  let t3 = Trace.sub t ~pos:1 ~len:3 in
  Alcotest.(check int) "sub" 1 (Trace.get t3 0)

let test_trace_rejects_negative () =
  Alcotest.check_raises "negative id"
    (Invalid_argument "Trace.make: negative item id") (fun () ->
      ignore (Trace.of_list Block_map.singleton [ 1; -2 ]))

(* ----------------------------------------------------------------- Zipf *)

let test_zipf_probabilities () =
  let z = Zipf.create ~n:10 ~alpha:1.0 in
  let total = ref 0. in
  for r = 0 to 9 do
    total := !total +. Zipf.probability z r
  done;
  Test_util.check_float ~eps:1e-9 "sums to 1" 1.0 !total;
  for r = 0 to 8 do
    Alcotest.(check bool) "monotone" true
      (Zipf.probability z r >= Zipf.probability z (r + 1))
  done

let test_zipf_uniform_alpha0 () =
  let z = Zipf.create ~n:8 ~alpha:0.0 in
  for r = 0 to 7 do
    Test_util.check_float ~eps:1e-9 "uniform" 0.125 (Zipf.probability z r)
  done

let test_zipf_sampling () =
  let r = rng () in
  let z = Zipf.create ~n:100 ~alpha:1.2 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let s = Zipf.sample z r in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 100);
    counts.(s) <- counts.(s) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates" true (counts.(0) > counts.(50))

(* ------------------------------------------------------------ Generators *)

let test_sequential () =
  let t = Generators.sequential ~n:10 ~universe:4 ~block_size:2 in
  Alcotest.(check (array int)) "cycle" [| 0; 1; 2; 3; 0; 1; 2; 3; 0; 1 |]
    t.Trace.requests

let test_strided () =
  let t = Generators.strided ~n:5 ~stride:3 ~universe:7 ~block_size:2 in
  Alcotest.(check (array int)) "strides" [| 0; 3; 6; 2; 5 |] t.Trace.requests

let test_uniform_random_bounds () =
  let t = Generators.uniform_random (rng ()) ~n:1000 ~universe:50 ~block_size:4 in
  Trace.iter (fun x -> Alcotest.(check bool) "bounds" true (x >= 0 && x < 50)) t

let test_spatial_mix_extremes () =
  let t = Generators.spatial_mix (rng ()) ~n:2000 ~universe:64 ~block_size:8 ~p_spatial:1.0 in
  (* With p = 1 every access stays in the very first block. *)
  Alcotest.(check int) "one block" 1 (Trace.distinct_blocks t);
  let t0 = Generators.spatial_mix (rng ()) ~n:5000 ~universe:640 ~block_size:8 ~p_spatial:0.0 in
  Alcotest.(check bool) "no spatial: many blocks" true (Trace.distinct_blocks t0 > 50)

let test_spatial_mix_ratio_monotone () =
  (* Use a universe much larger than the trace so the whole-trace ratio
     reflects the locality knob rather than saturating at B. *)
  let ratio p =
    let t = Generators.spatial_mix (rng ()) ~n:20_000 ~universe:200_000 ~block_size:16 ~p_spatial:p in
    Stats.spatial_ratio t
  in
  Alcotest.(check bool) "higher p -> higher f/g" true (ratio 0.9 > ratio 0.1 +. 0.5)

let test_working_set_phases () =
  let t =
    Generators.working_set_phases (rng ()) ~block_size:4
      ~phases:[ (10, 100); (20, 50) ]
  in
  Alcotest.(check int) "length" 150 (Trace.length t);
  (* Phase 2 items live in [10, 30). *)
  for pos = 100 to 149 do
    let x = Trace.get t pos in
    Alcotest.(check bool) "phase 2 range" true (x >= 10 && x < 30)
  done

let test_block_scan () =
  let t = Generators.block_scan ~n_blocks:3 ~repeats:2 ~block_size:2 in
  Alcotest.(check (array int)) "pattern"
    [| 0; 1; 0; 1; 2; 3; 2; 3; 4; 5; 4; 5 |]
    t.Trace.requests

let test_interleave () =
  let m = Block_map.uniform ~block_size:2 in
  let a = Trace.of_list m [ 0; 2; 4 ] and b = Trace.of_list m [ 1; 3 ] in
  let t = Generators.interleave a b in
  Alcotest.(check (array int)) "round robin" [| 0; 1; 2; 3; 4 |] t.Trace.requests

let test_markov_mixes_locality () =
  let t = Generators.markov (rng ()) ~n:40_000 ~universe:65_536 ~block_size:16 ~p_switch:0.02 in
  (* Streaming stretches give long same-block runs; random stretches break
     them: the mean run length sits strictly between the two pure cases. *)
  let mean = Stats.mean_block_run_length t in
  Alcotest.(check bool)
    (Printf.sprintf "mean run length %.2f in (1.2, 16)" mean)
    true
    (mean > 1.2 && mean < 16.);
  Trace.iter (fun x -> Alcotest.(check bool) "bounds" true (x >= 0 && x < 65_536)) t

let test_pointer_chase () =
  let t = Generators.pointer_chase (rng ()) ~n:20 ~universe:10 ~block_size:2 in
  (* The first 10 accesses form a permutation, repeated. *)
  let first = Array.sub t.Trace.requests 0 10 in
  Array.sort compare first;
  Alcotest.(check (array int)) "permutation" (Array.init 10 (fun i -> i)) first;
  Alcotest.(check int) "cycle repeats" (Trace.get t 0) (Trace.get t 10)

(* ---------------------------------------------------------------- Stats *)

let brute_force_distances proj requests =
  let n = Array.length requests in
  let finite = Hashtbl.create 16 in
  let cold = ref 0 in
  for i = 0 to n - 1 do
    let v = proj requests.(i) in
    (* Find previous position of v. *)
    let rec prev j = if j < 0 then None else if proj requests.(j) = v then Some j else prev (j - 1) in
    match prev (i - 1) with
    | None -> incr cold
    | Some j ->
        let seen = Hashtbl.create 8 in
        for p = j + 1 to i - 1 do
          Hashtbl.replace seen (proj requests.(p)) ()
        done;
        let d = Hashtbl.length seen in
        Hashtbl.replace finite d
          (1 + Option.value ~default:0 (Hashtbl.find_opt finite d))
  done;
  (finite, !cold)

let qcheck_stack_distances =
  Test_util.qcheck ~count:200 "stack distances match brute force"
    (Test_util.small_trace_arbitrary ())
    (fun (bs, reqs) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let h = Stats.stack_distances trace in
      let expected, cold = brute_force_distances (fun x -> x) reqs in
      if cold <> h.Stats.cold then false
      else
        Hashtbl.fold
          (fun d c acc ->
            acc && d < Array.length h.Stats.finite && h.Stats.finite.(d) = c)
          expected true
        && Array.to_list h.Stats.finite
           |> List.mapi (fun d c -> (d, c))
           |> List.for_all (fun (d, c) ->
                  c = Option.value ~default:0 (Hashtbl.find_opt expected d)))

let qcheck_miss_curve_matches_lru =
  Test_util.qcheck ~count:150 "Mattson curve equals simulated LRU"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let h = Stats.stack_distances trace in
      let predicted = Stats.lru_misses_at h k in
      let simulated =
        Test_util.run_misses (Gc_cache.Lru.create ~k) trace
      in
      predicted = simulated)

let test_miss_curve_monotone () =
  let t = Generators.uniform_random (rng ()) ~n:5000 ~universe:100 ~block_size:4 in
  let h = Stats.stack_distances t in
  let curve = Stats.miss_curve h ~max_size:120 in
  for k = 0 to 119 do
    Alcotest.(check bool) "monotone non-increasing" true (curve.(k) >= curve.(k + 1))
  done;
  Alcotest.(check int) "k=0 misses everything" 5000 curve.(0);
  Alcotest.(check int) "k >= universe: only cold misses" 100 curve.(119)

let test_block_stack_distances () =
  let t = Generators.sequential ~n:16 ~universe:8 ~block_size:4 in
  let h = Stats.block_stack_distances t in
  (* Two blocks alternating: block pattern 0 0 0 0 1 1 1 1 0 ... *)
  Alcotest.(check int) "cold blocks" 2 h.Stats.cold

let test_frequencies () =
  let t = Test_util.trace_of (2, [| 0; 1; 0; 2; 0 |]) in
  let f = Stats.item_frequencies t in
  Alcotest.(check (option int)) "item 0" (Some 3) (Hashtbl.find_opt f 0);
  let g = Stats.block_frequencies t in
  Alcotest.(check (option int)) "block 0 = items 0,1" (Some 4) (Hashtbl.find_opt g 0)

(* -------------------------------------------------------------- Trace_io *)

let qcheck_io_roundtrip =
  Test_util.qcheck ~count:100 "serialization round-trips"
    (Test_util.small_trace_arbitrary ())
    (fun (bs, reqs) ->
      let t = Test_util.trace_of (bs, reqs) in
      let t' = Trace_io.of_string (Trace_io.to_string t) in
      t'.Trace.requests = t.Trace.requests
      && Block_map.block_size t'.Trace.blocks = bs)

let test_io_explicit_roundtrip () =
  let m = Block_map.of_blocks [ [| 1; 3 |]; [| 5; 6; 7 |] ] in
  let t = Trace.of_list m [ 1; 5; 3; 7; 1 ] in
  let t' = Trace_io.of_string (Trace_io.to_string t) in
  Alcotest.(check (array int)) "requests" t.Trace.requests t'.Trace.requests;
  (* Block structure preserved: 1 and 3 share, 1 and 5 do not. *)
  Alcotest.(check bool) "same block" true (Block_map.same_block t'.Trace.blocks 1 3);
  Alcotest.(check bool) "diff block" false (Block_map.same_block t'.Trace.blocks 1 5)

let qcheck_binary_roundtrip =
  Test_util.qcheck ~count:150 "binary serialization round-trips"
    (Test_util.small_trace_arbitrary ())
    (fun (bs, reqs) ->
      let t = Test_util.trace_of (bs, reqs) in
      let t2 = Trace_io.of_bytes (Trace_io.to_bytes t) in
      t2.Trace.requests = t.Trace.requests
      && Block_map.block_size t2.Trace.blocks = bs)

let test_binary_explicit_roundtrip () =
  let m = Block_map.of_blocks [ [| 1; 3 |]; [| 5; 6; 7 |] ] in
  let t = Trace.of_list m [ 1; 5; 3; 7; 1 ] in
  let t2 = Trace_io.of_bytes (Trace_io.to_bytes t) in
  Alcotest.(check (array int)) "requests" t.Trace.requests t2.Trace.requests;
  Alcotest.(check bool) "same block" true
    (Block_map.same_block t2.Trace.blocks 1 3);
  Alcotest.(check bool) "diff block" false
    (Block_map.same_block t2.Trace.blocks 1 5)

let test_binary_compact_on_sequential () =
  let t = Generators.sequential ~n:100_000 ~universe:50_000 ~block_size:16 in
  let binary = Bytes.length (Trace_io.to_bytes t) in
  let text = String.length (Trace_io.to_string t) in
  (* Delta coding: ~1 byte per access vs ~6 for the text form. *)
  Alcotest.(check bool)
    (Printf.sprintf "binary %d << text %d" binary text)
    true
    (binary * 4 < text);
  Alcotest.(check bool) "about a byte per access" true (binary < 110_000)

let test_binary_rejects_garbage () =
  List.iter
    (fun b ->
      match Trace_io.of_bytes (Bytes.of_string b) with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted %S" b)
    [ ""; "GCTB"; "NOPE\001\000\004\000"; "GCTB\002\000\004\000";
      "GCTB\001\007" ]

let test_io_rejects_garbage () =
  List.iter
    (fun s ->
      match Trace_io.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ ""; "gctrace 2\n"; "gctrace 1\nblocks what 3\n"; "gctrace 1\nblocks uniform x\n" ]

let test_block_run_lengths () =
  (* B = 2: trace blocks are 0 0 | 1 | 0 0 0 -> runs 2, 1, 3. *)
  let t = Test_util.trace_of (2, [| 0; 1; 2; 0; 1; 0 |]) in
  let hist = Stats.block_run_lengths t in
  Alcotest.(check int) "runs of 1" 1 hist.(1);
  Alcotest.(check int) "runs of 2" 1 hist.(2);
  Alcotest.(check int) "runs of 3" 1 hist.(3);
  Test_util.check_float ~eps:1e-9 "mean" 2. (Stats.mean_block_run_length t)

let qcheck_run_lengths_sum_to_trace =
  Test_util.qcheck ~count:150 "run lengths partition the trace"
    (Test_util.small_trace_arbitrary ())
    (fun (bs, reqs) ->
      let t = Test_util.trace_of (bs, reqs) in
      let hist = Stats.block_run_lengths t in
      let total = ref 0 in
      Array.iteri (fun l c -> total := !total + (l * c)) hist;
      !total = Array.length reqs)

(* -------------------------------------------------------------- Transform *)

let test_transform_block_size () =
  let t = Test_util.trace_of (2, [| 0; 1; 4; 5 |]) in
  let t8 = Transform.with_block_size t ~block_size:8 in
  Alcotest.(check int) "one block" 1 (Trace.distinct_blocks t8);
  Alcotest.(check (array int)) "requests preserved" t.Trace.requests
    t8.Trace.requests

let test_transform_shuffle_preserves_temporal_structure () =
  let t =
    Generators.spatial_mix (rng ()) ~n:5000 ~universe:1024 ~block_size:8
      ~p_spatial:0.8
  in
  let shuffled = Transform.shuffle_layout (rng ()) t in
  (* Item-granularity reuse is untouched: stack distances identical. *)
  let h1 = Stats.stack_distances t and h2 = Stats.stack_distances shuffled in
  Alcotest.(check int) "cold" h1.Stats.cold h2.Stats.cold;
  Alcotest.(check (array int)) "distances" h1.Stats.finite h2.Stats.finite;
  (* Spatial locality is destroyed: far fewer repeated blocks per window. *)
  let g_before = Gc_locality.Working_set.g_at t 64 in
  let g_after = Gc_locality.Working_set.g_at shuffled 64 in
  Alcotest.(check bool)
    (Printf.sprintf "blocks per window grew (%d -> %d)" g_before g_after)
    true (g_after > g_before)

let test_transform_pack_blocks_improves_spatial () =
  (* Items touched consecutively but scattered across blocks: packing
     restores spatial locality. *)
  let scattered = Test_util.trace_of (4, [| 0; 100; 200; 0; 100; 200 |]) in
  let packed = Transform.pack_blocks scattered in
  Alcotest.(check int) "one block after packing" 1
    (Trace.distinct_blocks packed);
  Alcotest.(check int) "same distinct items" 3 (Trace.distinct_items packed)

let test_transform_truncate_and_sample () =
  let t = Test_util.trace_of (2, Array.init 100 (fun i -> i mod 10)) in
  Alcotest.(check int) "truncate" 30 (Trace.length (Transform.truncate t ~n:30));
  let sampled = Transform.sample_strided t ~keep_one_in:10 in
  Alcotest.(check int) "sampled length" 10 (Trace.length sampled);
  Alcotest.(check int) "keeps first" (Trace.get t 0) (Trace.get sampled 0)

(* --------------------------------------------------------- Workload_suite *)

let test_workload_suite () =
  let suite = Workload_suite.standard () in
  Alcotest.(check int) "eight workloads" 8 (List.length suite);
  let names = Workload_suite.names suite in
  Alcotest.(check bool) "unique names" true
    (List.sort_uniq compare names = List.sort compare names);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Workload_suite.name ^ " non-empty")
        true
        (Trace.length e.Workload_suite.trace > 0);
      Alcotest.(check bool)
        (e.Workload_suite.name ^ " described")
        true
        (String.length e.Workload_suite.description > 10))
    suite;
  (* Deterministic in the seed. *)
  let again = Workload_suite.standard () in
  List.iter2
    (fun a b ->
      Alcotest.(check (array int))
        (a.Workload_suite.name ^ " deterministic")
        a.Workload_suite.trace.Trace.requests b.Workload_suite.trace.Trace.requests)
    suite again;
  (* Lookup. *)
  Alcotest.(check bool) "find" true
    (Trace.length (Workload_suite.find "zipf" suite) > 0);
  match Workload_suite.find "nope" suite with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "found nonsense"

(* -------------------------------------------------------------- Adversary *)

let test_adversary_validation () =
  let lru = Gc_cache.Lru.create ~k:8 in
  (match Gc_cache.Attack.item_cache lru ~k:8 ~h:10 ~block_size:2 ~cycles:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "h > k accepted");
  let lru = Gc_cache.Lru.create ~k:8 in
  (match Gc_cache.Attack.block_cache lru ~k:8 ~h:10 ~block_size:4 ~cycles:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "h > ceil(k/B) accepted");
  let lru = Gc_cache.Lru.create ~k:32 in
  match
    Gc_cache.Attack.spatial_stress lru ~h:3 ~block_size:8 ~t_load:4 ~spacing:2
      ~cycles:1
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "h < t_load + 1 accepted"

let test_sleator_tarjan_exact () =
  (* Against LRU the ST construction achieves its bound exactly. *)
  let k = 60 and h = 20 in
  let lru = Gc_cache.Lru.create ~k in
  let c = Gc_cache.Attack.sleator_tarjan lru ~k ~h ~cycles:40 in
  Test_util.check_float ~eps:1e-9 "ratio = bound"
    c.Adversary.bound
    (Adversary.measured_ratio c)

let test_item_cache_adversary_exact () =
  (* Pick B | (k - h + 1) so the ceiling is exact. *)
  let k = 100 and h = 21 and block_size = 8 in
  let lru = Gc_cache.Lru.create ~k in
  let c = Gc_cache.Attack.item_cache lru ~k ~h ~block_size ~cycles:25 in
  Test_util.check_float ~eps:1e-9 "ratio = bound" c.Adversary.bound
    (Adversary.measured_ratio c)

let test_block_cache_adversary_exact () =
  let k = 96 and h = 4 and block_size = 8 in
  let bl = Gc_cache.Block_lru.create ~k ~blocks:(Block_map.uniform ~block_size) in
  let c = Gc_cache.Attack.block_cache bl ~k ~h ~block_size ~cycles:25 in
  Test_util.check_float ~eps:1e-9 "ratio = bound" c.Adversary.bound
    (Adversary.measured_ratio c)

let test_general_a_adversary () =
  let k = 128 and h = 16 and block_size = 8 in
  List.iter
    (fun a ->
      let p = Gc_cache.Param_a.create ~k ~a ~blocks:(Block_map.uniform ~block_size) in
      let c = Gc_cache.Attack.general_a p ~k ~h ~block_size ~cycles:20 in
      Alcotest.(check bool)
        (Printf.sprintf "a observed (a=%d)" a)
        true
        (List.assoc "a" c.Adversary.info = float_of_int (min a block_size));
      (* k - h + 1 = 113 divisible by nothing relevant; allow ceiling slack. *)
      Alcotest.(check bool)
        (Printf.sprintf "ratio close to bound (a=%d)" a)
        true
        (Adversary.measured_ratio c >= 0.85 *. c.Adversary.bound))
    [ 1; 2; 4; 8 ]

let test_adversary_traces_miss_everything () =
  (* The constructions guarantee the online policy misses every access
     after warmup. *)
  let k = 64 and h = 16 and block_size = 4 in
  let lru = Gc_cache.Lru.create ~k in
  let c = Gc_cache.Attack.item_cache lru ~k ~h ~block_size ~cycles:10 in
  let accesses = Trace.length c.Adversary.trace - c.Adversary.warmup_len in
  Alcotest.(check int) "all miss" accesses c.Adversary.online_misses

let test_spatial_stress_counts () =
  let block_size = 8 and h = 8 in
  let iblp =
    Gc_cache.Iblp.create ~i:8 ~b:32 ~blocks:(Block_map.uniform ~block_size) ()
  in
  let c =
    Gc_cache.Attack.spatial_stress iblp ~h ~block_size ~t_load:4 ~spacing:6
      ~cycles:20
  in
  (* Online IBLP misses everything: the spacing (6 >= b/B = 4) flushes the
     block layer between same-block requests. *)
  let accesses = Trace.length c.Adversary.trace in
  Alcotest.(check int) "all miss" accesses c.Adversary.online_misses;
  Test_util.check_float ~eps:1e-9 "ratio equals construction bound"
    c.Adversary.bound (Adversary.measured_ratio c)

let test_spatial_stress_pipelined () =
  let block_size = 8 in
  let b = 32 in
  let width = (b / block_size) + 1 in
  let t_load = 4 in
  let h = 1 + (((width * (t_load + 1)) + 1) / 2) in
  let iblp =
    Gc_cache.Iblp.create ~i:8 ~b ~blocks:(Block_map.uniform ~block_size) ()
  in
  let c =
    Gc_cache.Attack.spatial_stress_pipelined iblp ~h ~block_size ~t_load ~width
      ~rotations:200
  in
  (* Online misses every access; the measured ratio approaches t_load. *)
  Alcotest.(check int) "all miss" (Trace.length c.Adversary.trace)
    c.Adversary.online_misses;
  let r = Adversary.measured_ratio c in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f close to t = %d" r t_load)
    true
    (r > 0.9 *. float_of_int t_load && r <= float_of_int t_load);
  (* The claimed offline cost is achievable at size h (certified by the
     clairvoyant schedule). *)
  let clair = Gc_offline.Clairvoyant.cost ~k:h c.Adversary.trace in
  Alcotest.(check bool)
    (Printf.sprintf "certified: clairvoyant %d <= claimed %d" clair
       c.Adversary.opt_misses)
    true
    (clair <= c.Adversary.opt_misses)

let test_temporal_stress_counts () =
  let block_size = 4 and h = 6 in
  let lru = Gc_cache.Lru.create ~k:10 in
  let c =
    Gc_cache.Attack.temporal_stress lru ~h ~block_size ~spacing:12 ~cycles:15
  in
  let accesses = Trace.length c.Adversary.trace - c.Adversary.warmup_len in
  Alcotest.(check int) "all miss" accesses c.Adversary.online_misses

let () =
  Alcotest.run "gc_trace"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "sampling without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "golden values" `Quick test_rng_golden_values;
          Alcotest.test_case "float distribution" `Quick test_rng_float_distribution;
        ] );
      ( "block_map",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_block_map;
          Alcotest.test_case "singleton" `Quick test_singleton_block_map;
          Alcotest.test_case "explicit" `Quick test_explicit_block_map;
          Alcotest.test_case "rejects bad input" `Quick test_explicit_rejects_duplicates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "rejects negatives" `Quick test_trace_rejects_negative;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "probabilities" `Quick test_zipf_probabilities;
          Alcotest.test_case "alpha 0 uniform" `Quick test_zipf_uniform_alpha0;
          Alcotest.test_case "sampling" `Quick test_zipf_sampling;
        ] );
      ( "generators",
        [
          Alcotest.test_case "sequential" `Quick test_sequential;
          Alcotest.test_case "strided" `Quick test_strided;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_random_bounds;
          Alcotest.test_case "spatial mix extremes" `Quick test_spatial_mix_extremes;
          Alcotest.test_case "spatial mix monotone" `Quick test_spatial_mix_ratio_monotone;
          Alcotest.test_case "working set phases" `Quick test_working_set_phases;
          Alcotest.test_case "block scan" `Quick test_block_scan;
          Alcotest.test_case "interleave" `Quick test_interleave;
          Alcotest.test_case "pointer chase" `Quick test_pointer_chase;
          Alcotest.test_case "markov" `Quick test_markov_mixes_locality;
        ] );
      ( "stats",
        [
          qcheck_stack_distances;
          qcheck_miss_curve_matches_lru;
          Alcotest.test_case "miss curve monotone" `Quick test_miss_curve_monotone;
          Alcotest.test_case "block distances" `Quick test_block_stack_distances;
          Alcotest.test_case "frequencies" `Quick test_frequencies;
        ] );
      ( "trace_io",
        [
          qcheck_io_roundtrip;
          Alcotest.test_case "explicit roundtrip" `Quick test_io_explicit_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          qcheck_binary_roundtrip;
          Alcotest.test_case "binary explicit roundtrip" `Quick test_binary_explicit_roundtrip;
          Alcotest.test_case "binary is compact" `Quick test_binary_compact_on_sequential;
          Alcotest.test_case "binary rejects garbage" `Quick test_binary_rejects_garbage;
        ] );
      ( "run_lengths",
        [
          Alcotest.test_case "histogram" `Quick test_block_run_lengths;
          qcheck_run_lengths_sum_to_trace;
        ] );
      ( "transform",
        [
          Alcotest.test_case "block size" `Quick test_transform_block_size;
          Alcotest.test_case "shuffle preserves temporal" `Quick
            test_transform_shuffle_preserves_temporal_structure;
          Alcotest.test_case "pack improves spatial" `Quick
            test_transform_pack_blocks_improves_spatial;
          Alcotest.test_case "truncate and sample" `Quick
            test_transform_truncate_and_sample;
        ] );
      ( "workload_suite",
        [ Alcotest.test_case "catalog" `Quick test_workload_suite ] );
      ( "adversary",
        [
          Alcotest.test_case "validation" `Quick test_adversary_validation;
          Alcotest.test_case "sleator-tarjan exact vs LRU" `Quick test_sleator_tarjan_exact;
          Alcotest.test_case "thm2 exact vs LRU" `Quick test_item_cache_adversary_exact;
          Alcotest.test_case "thm3 exact vs Block-LRU" `Quick test_block_cache_adversary_exact;
          Alcotest.test_case "thm4 measures a" `Quick test_general_a_adversary;
          Alcotest.test_case "online misses everything" `Quick test_adversary_traces_miss_everything;
          Alcotest.test_case "spatial stress" `Quick test_spatial_stress_counts;
          Alcotest.test_case "pipelined spatial stress" `Quick
            test_spatial_stress_pipelined;
          Alcotest.test_case "temporal stress" `Quick test_temporal_stress_counts;
        ] );
    ]
