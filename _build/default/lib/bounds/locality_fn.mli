(** Locality functions for the extended Albers-Favrholdt-Giel model
    (paper Sections 2 and 7).

    [f n] bounds the number of distinct {e items} in any window of [n]
    accesses; [g n] does the same for distinct {e blocks}.  Valid pairs
    satisfy [f n / B <= g n <= f n]; the ratio [f/g] measures spatial
    locality.  Bounds use the inverses, so each function carries its own. *)

type t = {
  eval : float -> float;
  inverse : float -> float;
  description : string;
}

val apply : t -> float -> float
val inv : t -> float -> float

val power : ?coeff:float -> p:float -> unit -> t
(** [power ~p ()] is [f n = coeff * n^(1/p)] (concave for [p >= 1]),
    with inverse [m -> (m / coeff)^p].  [coeff] defaults to 1. *)

val scaled : t -> factor:float -> t
(** [scaled f ~factor] is [n -> f n / factor] — how the paper derives [g]
    from [f]: [g = f] (no spatial locality) through [g = f / B]
    (maximal). *)

val spatial_pair :
  p:float -> ratio:float -> block_size:float -> t * t
(** [(f, g)] with [f = power ~p] and [g = f / ratio]; checks
    [1 <= ratio <= block_size]. *)
