let competitive_ratio ~k ~h = k /. (k -. h +. 1.)

let augmentation_for_ratio ~ratio ~h = ratio *. (h -. 1.) /. (ratio -. 1.)
