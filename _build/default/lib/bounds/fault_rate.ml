let clamp01 v = Float.min 1. (Float.max 0. v)

let lower ~k ~f ~g =
  let window = Locality_fn.inv f (k +. 1.) -. 2. in
  if window <= 0. then 1. else clamp01 (Locality_fn.apply g window /. window)

let item_layer ~i ~f =
  let window = Locality_fn.inv f (i +. 1.) -. 2. in
  if window <= 0. then 1. else clamp01 ((i -. 1.) /. window)

let block_layer ~b ~block_size ~g =
  let eff = b /. block_size in
  let window = Locality_fn.inv g (eff +. 1.) -. 2. in
  if window <= 0. then 1. else clamp01 ((eff -. 1.) /. window)

let iblp ~i ~b ~block_size ~f ~g =
  Float.min (item_layer ~i ~f) (block_layer ~b ~block_size ~g)
