(** Choosing IBLP's layer sizes (Section 5.3).

    When the offline size [h] is known, the optimal split has a closed
    form; this module provides it plus a numeric cross-check that minimizes
    the Theorem-7 bound directly. *)

val item_layer_threshold : h:float -> block_size:float -> float
(** The online size below which IBLP should devote everything to the item
    layer: [(3Bh - h - B^2 - B) / (B - 1)]. *)

val optimal_i : k:float -> h:float -> block_size:float -> float
(** Optimal item-layer size.  For [k] below {!item_layer_threshold} this is
    [k] itself (operate as an Item Cache); above it,
    [(k^2 + 4Bhk - hk + 4B^2 h - 3Bh - B^2)
     / (2Bk + k + 2Bh - h + 2B^2 - 3B)]. *)

val optimal_ratio : k:float -> h:float -> block_size:float -> float
(** The competitive ratio at the optimal split:
    [(k + B - 1)(k - h + B(2h - 1)) / (k - h + B)^2] above the threshold,
    [(2Bk - B^2 - B) / (2 (k - h))] below it. *)

val numeric_best_split :
  k:float -> h:float -> block_size:float -> float * float
(** [(i, ratio)] minimizing the Theorem-7 bound over [i] by grid search
    with [b = k - i] — the mechanical check of the closed form. *)

val large_cache_ratio : k:float -> h:float -> block_size:float -> float
(** The paper's simplified form for [k > h >> B >> 1]:
    [k (k + 2Bh) / (k - h)^2] when [k >= 3h], else [Bk / (k - h)]. *)
