lib/bounds/sleator_tarjan.mli:
