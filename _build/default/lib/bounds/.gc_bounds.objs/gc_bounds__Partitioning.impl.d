lib/bounds/partitioning.ml: Float Gc_lp Iblp_upper
