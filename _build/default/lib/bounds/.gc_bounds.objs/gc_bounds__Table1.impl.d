lib/bounds/table1.ml: Lower_bounds Partitioning Printf Sleator_tarjan
