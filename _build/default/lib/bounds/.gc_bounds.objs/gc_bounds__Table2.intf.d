lib/bounds/table2.mli:
