lib/bounds/partitioning.mli:
