lib/bounds/figures.mli:
