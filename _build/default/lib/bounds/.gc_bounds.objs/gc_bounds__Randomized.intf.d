lib/bounds/randomized.mli:
