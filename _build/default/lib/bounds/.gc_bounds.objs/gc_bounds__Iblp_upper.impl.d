lib/bounds/iblp_upper.ml: Float
