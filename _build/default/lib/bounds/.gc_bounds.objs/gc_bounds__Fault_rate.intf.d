lib/bounds/fault_rate.mli: Locality_fn
