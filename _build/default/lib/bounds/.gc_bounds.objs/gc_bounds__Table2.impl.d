lib/bounds/table2.ml: Fault_rate Float Locality_fn Printf
