lib/bounds/sleator_tarjan.ml:
