lib/bounds/randomized.ml:
