lib/bounds/iblp_upper.mli:
