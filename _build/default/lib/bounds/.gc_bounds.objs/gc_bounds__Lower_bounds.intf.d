lib/bounds/lower_bounds.mli:
