lib/bounds/locality_fn.ml: Float Printf
