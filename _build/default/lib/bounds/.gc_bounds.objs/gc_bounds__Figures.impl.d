lib/bounds/figures.ml: Float Iblp_upper List Lower_bounds Partitioning Sleator_tarjan
