lib/bounds/fault_rate.ml: Float Locality_fn
