lib/bounds/lower_bounds.ml: Float
