lib/bounds/table1.mli:
