lib/bounds/locality_fn.mli:
