(** Fault-rate bounds in the extended locality model (Theorems 8-11).

    Note on Theorem 10: the paper's statement prints [f^-1], but its proof
    substitutes "the number of blocks in a window g(n) as the items per
    window function", so the inverse applied is [g^-1]; we implement the
    proof's version (the printed form is a typo — with [f^-1] the block
    layer's bound would not reduce to the Albers et al. bound on the
    block-projected trace). *)

val lower : k:float -> f:Locality_fn.t -> g:Locality_fn.t -> float
(** Theorem 8: every deterministic policy faults at rate at least
    [g(f^-1(k+1) - 2) / (f^-1(k+1) - 2)]. *)

val item_layer : i:float -> f:Locality_fn.t -> float
(** Theorem 9: the item layer faults at rate at most
    [(i - 1) / (f^-1(i+1) - 2)]. *)

val block_layer : b:float -> block_size:float -> g:Locality_fn.t -> float
(** Theorem 10: the block layer faults at rate at most
    [(b/B - 1) / (g^-1(b/B + 1) - 2)]. *)

val iblp :
  i:float -> b:float -> block_size:float -> f:Locality_fn.t -> g:Locality_fn.t -> float
(** Theorem 11: [min(item_layer, block_layer)]. *)
