type figure3_point = {
  h : float;
  sleator_tarjan : float;
  gc_lower : float;
  iblp_upper : float;
  item_cache_lower : float;
  block_cache_lower : float;
}

let figure3 ~k ~block_size ~hs =
  List.map
    (fun h ->
      {
        h;
        sleator_tarjan = Sleator_tarjan.competitive_ratio ~k ~h;
        gc_lower = Lower_bounds.best ~k ~h ~block_size;
        iblp_upper = Partitioning.optimal_ratio ~k ~h ~block_size;
        item_cache_lower = Lower_bounds.item_cache ~k ~h ~block_size;
        block_cache_lower = Lower_bounds.block_cache ~k ~h ~block_size;
      })
    hs

type figure6_point = {
  h : float;
  optimal_split : float;
  fixed_splits : (float * float) list;
}

let figure6 ~k ~block_size ~fixed_is ~hs =
  List.map
    (fun h ->
      {
        h;
        optimal_split = Partitioning.optimal_ratio ~k ~h ~block_size;
        fixed_splits =
          List.map
            (fun i ->
              (i, Iblp_upper.combined ~i ~b:(k -. i) ~block_size ~h))
            fixed_is;
      })
    hs

let default_hs ~k ~steps =
  let lo = 2. and hi = k /. 2. in
  List.init (steps + 1) (fun idx ->
      lo *. Float.pow (hi /. lo) (float_of_int idx /. float_of_int steps))
