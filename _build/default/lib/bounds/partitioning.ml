let item_layer_threshold ~h ~block_size =
  let bb = block_size in
  ((3. *. bb *. h) -. h -. (bb *. bb) -. bb) /. (bb -. 1.)

let optimal_i ~k ~h ~block_size =
  if k < item_layer_threshold ~h ~block_size then k
  else begin
    let bb = block_size in
    ((k *. k) +. (4. *. bb *. h *. k) -. (h *. k) +. (4. *. bb *. bb *. h)
    -. (3. *. bb *. h) -. (bb *. bb))
    /. ((2. *. bb *. k) +. k +. (2. *. bb *. h) -. h +. (2. *. bb *. bb)
       -. (3. *. bb))
  end

let optimal_ratio ~k ~h ~block_size =
  if k <= h then infinity
  else begin
    let bb = block_size in
    if k < item_layer_threshold ~h ~block_size then
      ((2. *. bb *. k) -. (bb *. bb) -. bb) /. (2. *. (k -. h))
    else begin
      let d = k -. h +. bb in
      (k +. bb -. 1.) *. (k -. h +. (bb *. ((2. *. h) -. 1.))) /. (d *. d)
    end
  end

let numeric_best_split ~k ~h ~block_size =
  let objective i = -.Iblp_upper.combined ~i ~b:(k -. i) ~block_size ~h in
  let lo = Float.min (h +. 1e-6) k and hi = k in
  let i, neg = Gc_lp.Grid_opt.grid_max ~refine:6 ~steps:4096 ~lo ~hi objective in
  (i, -.neg)

let large_cache_ratio ~k ~h ~block_size =
  if k >= 3. *. h then
    k *. (k +. (2. *. block_size *. h)) /. ((k -. h) *. (k -. h))
  else block_size *. k /. (k -. h)
