(** Series generators for the paper's bound figures (3 and 6).

    Both figures fix the online cache size [k = 1.28M] and block size
    [B = 64] and sweep the offline cache size [h] on the x-axis, plotting
    competitive ratios on the y-axis. *)

type figure3_point = {
  h : float;
  sleator_tarjan : float;  (** Traditional lower bound. *)
  gc_lower : float;  (** Theorem 4 minimized over [a]. *)
  iblp_upper : float;  (** Section 5.3, optimal split. *)
  item_cache_lower : float;  (** Theorem 2: LRU of the same size. *)
  block_cache_lower : float;  (** Theorem 3: Block-LRU of the same size. *)
}

val figure3 : k:float -> block_size:float -> hs:float list -> figure3_point list

type figure6_point = {
  h : float;
  optimal_split : float;  (** Ratio with the split re-optimized per h. *)
  fixed_splits : (float * float) list;
      (** [(i, ratio)] for each requested fixed item-layer size. *)
}

val figure6 :
  k:float ->
  block_size:float ->
  fixed_is:float list ->
  hs:float list ->
  figure6_point list
(** Fixed layer sizes vs. the per-[h] optimum (Figure 6 shows how a split
    tuned for one [h] degrades for larger [h]). *)

val default_hs : k:float -> steps:int -> float list
(** Geometrically spaced [h] values in [\[2, k/2\]] for plotting. *)
