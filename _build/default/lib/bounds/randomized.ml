let harmonic k =
  if k < 1 then invalid_arg "Randomized.harmonic: k must be >= 1";
  let acc = ref 0. in
  for j = 1 to k do
    acc := !acc +. (1. /. float_of_int j)
  done;
  !acc

let marking_upper ~k = 2. *. harmonic k

let randomized_lower ~k = harmonic k
