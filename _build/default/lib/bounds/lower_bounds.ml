let guard_ratio v = if v <= 0. then infinity else v

let item_cache ~k ~h ~block_size =
  guard_ratio (block_size *. (k -. block_size +. 1.) /. (k -. h +. 1.))

let block_cache ~k ~h ~block_size =
  let denom = k -. (block_size *. (h -. 1.)) in
  if denom <= 0. then infinity else guard_ratio (k /. denom)

let general ~a ~k ~h ~block_size =
  (* The construction stores the a step-2 items in the offline cache, so it
     needs h >= a; and a block cannot force more than B distinct accesses. *)
  if a > h || a > block_size || a < 1. then infinity
  else
    guard_ratio
      (((a *. (k -. h +. 1.)) +. (block_size *. (h -. a)))
      /. (k -. h +. 1.))

(* The Theorem-4 expression is linear in a, so its minimum over the valid
   domain [1, min(B, h)] is at an endpoint: a = 1 when the coefficient
   (k - h + 1 - B) is positive. *)
let best_a ~k ~h ~block_size =
  if k -. h +. 1. > block_size then 1. else Float.min block_size h

let best ~k ~h ~block_size =
  let a = best_a ~k ~h ~block_size in
  general ~a ~k ~h ~block_size
