let temporal ~i ~h = if i <= h then infinity else i /. (i -. h)

let spatial ~b ~block_size ~h =
  let ratio =
    (b +. (2. *. block_size *. h) -. block_size) /. (b +. block_size)
  in
  Float.min block_size ratio

let combined_threshold ~b ~block_size =
  ((2. *. block_size *. b) -. b +. (2. *. block_size *. block_size)
  +. block_size)
  /. (2. *. block_size)

let combined ~i ~b ~block_size ~h =
  if i <= h then infinity
  else begin
    let bb = block_size in
    if i <= combined_threshold ~b ~block_size then begin
      let num = b +. (bb *. ((2. *. i) -. 1.)) in
      num *. num /. (8. *. bb *. (bb +. b) *. (i -. h))
    end
    else
      ((2. *. bb *. i) -. (bb *. b) +. b -. (bb *. bb) -. bb)
      /. ((2. *. i) -. (2. *. h))
  end
