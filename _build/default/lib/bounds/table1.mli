(** Reproduction of the paper's Table 1: salient (augmentation, competitive
    ratio) points for the Sleator-Tarjan bound, the GC lower bound, and the
    IBLP (GC) upper bound.

    The three settings are:
    - {e constant augmentation}: fix [k = 2h], report the ratio;
    - {e ratio = augmentation}: the [k] where the ratio equals [k / h];
    - {e constant ratio}: the [k] at which the ratio drops to the small
      constant the paper quotes (2 for ST and the lower bound, 3 for the
      upper bound).

    The paper's asymptotic entries (e.g. [k ≈ sqrt(B) h ⇒ sqrt(B)x]) are
    reproduced alongside the exact numeric solutions. *)

type family = St | Gc_lower | Gc_upper

type point = { augmentation : float; ratio : float }
(** [augmentation] is [k / h]. *)

val eval : family -> k:float -> h:float -> block_size:float -> float
(** The family's competitive-ratio formula (the GC upper bound uses the
    optimal IBLP split of Section 5.3). *)

val constant_augmentation : h:float -> block_size:float -> family -> point

val meeting_point : h:float -> block_size:float -> family -> point
(** Solves [ratio(k) = k / h] by bisection. *)

val constant_ratio :
  h:float -> block_size:float -> target:float -> family -> point
(** Solves [ratio(k) = target] by bisection. *)

type row = {
  setting : string;
  paper_form : family -> string;  (** The table's symbolic entry. *)
  point : family -> point;  (** Our exact evaluation. *)
}

val rows : h:float -> block_size:float -> row list
(** The three Table-1 rows at the given [h] and [B]. *)
