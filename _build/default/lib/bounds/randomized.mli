(** Classical randomized-paging bounds, for Section-6 context.

    Against {e oblivious} adversaries, randomized marking is
    [2 H_k]-competitive and no randomized policy beats [H_k] (Fiat et al.).
    The paper's Section 6 extends marking to GC caching (GCM) and shows
    randomization does {e not} remove the comparison-size dependence; these
    classical numbers are the baseline the [randomized] bench compares
    measured expectations against.

    Note the adversaries in [Gc_trace.Adversary] are adaptive (they query
    the policy's state), so these bounds do not apply to them — the bench
    replays {e fixed} traces across seeds instead. *)

val harmonic : int -> float
(** [H_k = 1 + 1/2 + ... + 1/k]. *)

val marking_upper : k:int -> float
(** [2 H_k]: expected competitive ratio of the marking algorithm against an
    oblivious adversary (equal cache sizes). *)

val randomized_lower : k:int -> float
(** [H_k]: no randomized policy does better (equal cache sizes). *)
