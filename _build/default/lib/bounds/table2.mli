(** Reproduction of the paper's Table 2: fault-rate bounds for an equally
    split IBLP ([i = b]) against the lower bound for a cache of the size of
    each partition, under polynomial locality [f n = n^(1/p)].

    For each spatial-locality ratio [rho = f/g] the row reports the
    Theorem-8 lower bound and the Theorem-9/10 upper bounds, both as the
    asymptotic forms the paper prints and as exact numeric values.

    Note: the paper's middle rows pair [g = f / B^(1/2)] with entries in
    [B^((p-1)/p)]; those agree only at [p = 2].  Section 7.3 identifies the
    largest-gap ratio as [B^(1 - 1/p)], which makes the printed entries
    consistent, so we use [rho = B^((p-1)/p)] for the middle row. *)

type row = {
  f_desc : string;
  g_desc : string;
  lower_asym : string;
  item_asym : string;
  block_asym : string;
  lower : float;  (** Theorem 8 at cache size [size]. *)
  item_ub : float;  (** Theorem 9 at [i = size]. *)
  block_ub : float;  (** Theorem 10 at [b = size]. *)
}

val rows : p:float -> block_size:float -> size:float -> row list
(** Three rows, for [rho] in [{1, B^((p-1)/p), B}], evaluated at
    [i = b = h = size]. *)
