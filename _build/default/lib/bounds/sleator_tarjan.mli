(** The classic Sleator-Tarjan paging bounds (traditional caching).

    With online cache size [k] and offline size [h], every deterministic
    policy has competitive ratio at least [k / (k - h + 1)], and LRU
    achieves it.  Used as the baseline the paper's Table 1 and Figure 3
    compare against. *)

val competitive_ratio : k:float -> h:float -> float
(** [k / (k - h + 1)]; infinite when [k < h] is nonsense input (we return
    the formula value; callers should pass [k >= h >= 1]). *)

val augmentation_for_ratio : ratio:float -> h:float -> float
(** The [k] at which the ST ratio equals [ratio]:
    [k = (ratio * (h - 1)) / (ratio - 1)]. *)
