(** Competitive-ratio lower bounds for GC caching (Theorems 2-4).

    All arguments in items: [k] online cache size, [h] offline cache size,
    [block_size] = B.  Formulas return [infinity] where the corresponding
    denominator is non-positive (the policy is not competitive at all). *)

val item_cache : k:float -> h:float -> block_size:float -> float
(** Theorem 2: any Item Cache is at least
    [B (k - B + 1) / (k - h + 1)]-competitive. *)

val block_cache : k:float -> h:float -> block_size:float -> float
(** Theorem 3: any Block Cache is at least
    [k / (k - B (h - 1))]-competitive ([infinity] for [k <= B (h-1)]). *)

val general : a:float -> k:float -> h:float -> block_size:float -> float
(** Theorem 4: a policy that loads a whole block only after [a] distinct
    consecutive accesses is at least
    [(a (k - h + 1) + B (h - a)) / (k - h + 1)]-competitive.  Valid for
    [1 <= a <= min(B, h)] (the offline cache needs [h >= a] space for the
    step-2 items); [infinity] outside that domain. *)

val best : k:float -> h:float -> block_size:float -> float
(** The problem's deterministic lower bound: the minimum of {!general} over
    the valid [a] range.  Section 4.4 shows the minimum is at an extreme
    ([a = 1] when [k - h + 1 > B], else [a = min(B, h)]). *)

val best_a : k:float -> h:float -> block_size:float -> float
(** The minimizing [a] (1 or [min(B, h)]). *)
