type family = St | Gc_lower | Gc_upper

type point = { augmentation : float; ratio : float }

let eval family ~k ~h ~block_size =
  match family with
  | St -> Sleator_tarjan.competitive_ratio ~k ~h
  | Gc_lower -> Lower_bounds.best ~k ~h ~block_size
  | Gc_upper -> Partitioning.optimal_ratio ~k ~h ~block_size

let constant_augmentation ~h ~block_size family =
  let k = 2. *. h in
  { augmentation = 2.; ratio = eval family ~k ~h ~block_size }

(* All three ratio formulas decrease in k (more online space can only
   help), so [solve] bisects a decreasing function. *)
let bisect ~lo ~hi f =
  let lo = ref lo and hi = ref hi in
  for _ = 1 to 200 do
    let mid = (!lo +. !hi) /. 2. in
    if f mid > 0. then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2.

let meeting_point ~h ~block_size family =
  let objective k = eval family ~k ~h ~block_size -. (k /. h) in
  let k =
    bisect ~lo:(h +. 1.) ~hi:(4. *. block_size *. h *. (h +. 1.)) objective
  in
  { augmentation = k /. h; ratio = eval family ~k ~h ~block_size }

let constant_ratio ~h ~block_size ~target family =
  let objective k = eval family ~k ~h ~block_size -. target in
  let k =
    bisect ~lo:(h +. 1.) ~hi:(100. *. block_size *. h *. (h +. 1.)) objective
  in
  { augmentation = k /. h; ratio = eval family ~k ~h ~block_size }

type row = {
  setting : string;
  paper_form : family -> string;
  point : family -> point;
}

let rows ~h ~block_size =
  let b = block_size in
  [
    {
      setting = "Constant Augmentation";
      paper_form =
        (function
        | St -> "k = 2h => 2x"
        | Gc_lower -> Printf.sprintf "k ~ 2h => Bx (= %gx)" b
        | Gc_upper -> Printf.sprintf "k ~ 2h => 2Bx (= %gx)" (2. *. b));
      point = constant_augmentation ~h ~block_size;
    };
    {
      setting = "Ratio = Augmentation";
      paper_form =
        (function
        | St -> "k = 2h => 2x"
        | Gc_lower ->
            Printf.sprintf "k ~ sqrt(B) h => sqrt(B)x (= %.2fx)" (sqrt b)
        | Gc_upper ->
            Printf.sprintf "k ~ sqrt(2B) h => sqrt(2B)x (= %.2fx)"
              (sqrt (2. *. b)));
      point = meeting_point ~h ~block_size;
    };
    {
      setting = "Constant Ratio";
      paper_form =
        (function
        | St -> "k = 2h => 2x"
        | Gc_lower -> "k ~ Bh => 2x"
        | Gc_upper -> "k ~ Bh => 3x");
      point =
        (fun family ->
          let target = match family with Gc_upper -> 3. | _ -> 2. in
          constant_ratio ~h ~block_size ~target family);
    };
  ]
