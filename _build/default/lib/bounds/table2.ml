type row = {
  f_desc : string;
  g_desc : string;
  lower_asym : string;
  item_asym : string;
  block_asym : string;
  lower : float;
  item_ub : float;
  block_ub : float;
}

let pow_desc base e =
  if e = 0. then "1"
  else if e = 1. then base
  else Printf.sprintf "%s^%g" base e

let rows ~p ~block_size ~size =
  let make_row ~rho ~g_desc ~lower_asym ~block_asym =
    let f, g = Locality_fn.spatial_pair ~p ~ratio:rho ~block_size in
    {
      f_desc = Printf.sprintf "n^(1/%g)" p;
      g_desc;
      lower_asym;
      item_asym = Printf.sprintf "1/%s" (pow_desc "i" (p -. 1.));
      block_asym;
      lower = Fault_rate.lower ~k:size ~f ~g;
      item_ub = Fault_rate.item_layer ~i:size ~f;
      block_ub = Fault_rate.block_layer ~b:size ~block_size ~g;
    }
  in
  let hp = pow_desc "h" (p -. 1.) and bp = pow_desc "b" (p -. 1.) in
  [
    (* No spatial locality: g = f. *)
    make_row ~rho:1. ~g_desc:(Printf.sprintf "n^(1/%g)" p)
      ~lower_asym:(Printf.sprintf "1/%s" hp)
      ~block_asym:(Printf.sprintf "%s/%s" (pow_desc "B" (p -. 1.)) bp);
    (* Largest-gap spatial locality: g = f / B^((p-1)/p). *)
    make_row
      ~rho:(Float.pow block_size ((p -. 1.) /. p))
      ~g_desc:(Printf.sprintf "n^(1/%g) / B^(%g)" p ((p -. 1.) /. p))
      ~lower_asym:(Printf.sprintf "1/(B^(%g) %s)" ((p -. 1.) /. p) hp)
      ~block_asym:(Printf.sprintf "1/%s" bp);
    (* Maximal spatial locality: g = f / B. *)
    make_row ~rho:block_size
      ~g_desc:(Printf.sprintf "n^(1/%g) / B" p)
      ~lower_asym:(Printf.sprintf "1/(B %s)" hp)
      ~block_asym:(Printf.sprintf "1/(B %s)" bp);
  ]
