(** Competitive-ratio upper bounds for IBLP (Theorems 5-7).

    [i] = item-layer size, [b] = block-layer size, [block_size] = B,
    [h] = offline cache size.  All bounds are [infinity] when the layer
    meant to beat the adversary is no larger than [h] ([i <= h] for the
    temporal bound and the combined bound). *)

val temporal : i:float -> h:float -> float
(** Theorem 5: the item layer alone, against pure temporal locality:
    [i / (i - h)]. *)

val spatial : b:float -> block_size:float -> h:float -> float
(** Theorem 6: the block layer alone, against pure spatial locality:
    [min (B, (b + 2Bh - B) / (b + B))]. *)

val combined_threshold : b:float -> block_size:float -> float
(** The item-layer size at which the combined program's inner optimum
    saturates [t = B]: [(2Bb - b + 2B^2 + B) / (2B)]. *)

val combined : i:float -> b:float -> block_size:float -> h:float -> float
(** Theorem 7, both regimes:
    - [i <= threshold]: [(b + B(2i-1))^2 / (8B (B+b) (i-h))]
    - [i > threshold]: [(2Bi - Bb + b - B^2 - B) / (2i - 2h)] *)
