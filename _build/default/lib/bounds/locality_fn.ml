type t = {
  eval : float -> float;
  inverse : float -> float;
  description : string;
}

let apply t x = t.eval x
let inv t y = t.inverse y

let power ?(coeff = 1.) ~p () =
  if p < 1. then invalid_arg "Locality_fn.power: p must be >= 1";
  if coeff <= 0. then invalid_arg "Locality_fn.power: coeff must be positive";
  {
    eval = (fun n -> coeff *. Float.pow n (1. /. p));
    inverse = (fun m -> Float.pow (m /. coeff) p);
    description = Printf.sprintf "%g * n^(1/%g)" coeff p;
  }

let scaled f ~factor =
  if factor <= 0. then invalid_arg "Locality_fn.scaled: factor must be positive";
  {
    eval = (fun n -> f.eval n /. factor);
    inverse = (fun m -> f.inverse (m *. factor));
    description = Printf.sprintf "(%s) / %g" f.description factor;
  }

let spatial_pair ~p ~ratio ~block_size =
  if ratio < 1. || ratio > block_size then
    invalid_arg "Locality_fn.spatial_pair: ratio must be in [1, B]";
  let f = power ~p () in
  (f, scaled f ~factor:ratio)
