(** Dense primal simplex for small linear programs.

    Solves [maximize c.x  subject to  A.x <= b, x >= 0] with Bland's rule
    (guaranteed termination).  The paper's analysis (Section 5.2) reduces to
    such programs once the number of loaded items [t] is fixed; we use this
    solver to cross-check the closed forms of Theorems 5-7. *)

type result =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Infeasible
      (** Only possible with negative entries in [b]; we solve such cases by
          a standard phase-one construction. *)

val solve : c:float array -> a:float array array -> b:float array -> result
(** [solve ~c ~a ~b] where [a] is [m x n], [b] has length [m], [c] length
    [n].  Raises [Invalid_argument] on shape mismatch. *)

val epsilon : float
(** Numerical tolerance used for pivoting decisions (1e-9). *)
