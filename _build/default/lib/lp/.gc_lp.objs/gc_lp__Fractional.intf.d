lib/lp/fractional.mli:
