lib/lp/grid_opt.ml: Float
