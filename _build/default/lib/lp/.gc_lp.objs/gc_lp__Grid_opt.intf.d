lib/lp/grid_opt.mli:
