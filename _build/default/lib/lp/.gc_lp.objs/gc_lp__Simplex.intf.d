lib/lp/simplex.mli:
