lib/lp/fractional.ml: Array Float Grid_opt Simplex
