let ternary_max ?(iters = 200) ~lo ~hi f =
  let lo = ref lo and hi = ref hi in
  for _ = 1 to iters do
    let m1 = !lo +. ((!hi -. !lo) /. 3.)
    and m2 = !hi -. ((!hi -. !lo) /. 3.) in
    if f m1 < f m2 then lo := m1 else hi := m2
  done;
  let x = (!lo +. !hi) /. 2. in
  (x, f x)

let grid_pass ~steps ~lo ~hi f =
  let best_x = ref lo and best_v = ref (f lo) in
  for i = 1 to steps do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps) in
    let v = f x in
    if v > !best_v then begin
      best_v := v;
      best_x := x
    end
  done;
  (!best_x, !best_v)

let grid_max ?(refine = 3) ~steps ~lo ~hi f =
  let rec go lo hi n =
    let x, v = grid_pass ~steps ~lo ~hi f in
    if n = 0 then (x, v)
    else begin
      let cell = (hi -. lo) /. float_of_int steps in
      let lo' = Float.max lo (x -. cell) and hi' = Float.min hi (x +. cell) in
      go lo' hi' (n - 1)
    end
  in
  go lo hi refine

let grid_max2 ~steps ~lo1 ~hi1 ~lo2 ~hi2 f =
  let eval lo1 hi1 lo2 hi2 =
    let best = ref ((lo1, lo2), f lo1 lo2) in
    for i = 0 to steps do
      for j = 0 to steps do
        let x = lo1 +. ((hi1 -. lo1) *. float_of_int i /. float_of_int steps)
        and y = lo2 +. ((hi2 -. lo2) *. float_of_int j /. float_of_int steps) in
        let v = f x y in
        if v > snd !best then best := ((x, y), v)
      done
    done;
    !best
  in
  let (x, y), _ = eval lo1 hi1 lo2 hi2 in
  let c1 = (hi1 -. lo1) /. float_of_int steps
  and c2 = (hi2 -. lo2) /. float_of_int steps in
  eval (Float.max lo1 (x -. c1)) (Float.min hi1 (x +. c1))
    (Float.max lo2 (y -. c2))
    (Float.min hi2 (y +. c2))
