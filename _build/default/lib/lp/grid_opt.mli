(** One-dimensional numeric optimization helpers.

    Used to optimize the paper's fractional programs over the remaining free
    variable once the LP part is solved exactly. *)

val ternary_max : ?iters:int -> lo:float -> hi:float -> (float -> float) -> float * float
(** [ternary_max ~lo ~hi f] maximizes a unimodal [f] on [\[lo, hi\]];
    returns [(argmax, max)].  Default 200 iterations (~1e-60 interval
    shrink, i.e. machine precision). *)

val grid_max :
  ?refine:int -> steps:int -> lo:float -> hi:float -> (float -> float) -> float * float
(** [grid_max ~steps ~lo ~hi f] evaluates [f] on a uniform grid and then
    refines around the best point [refine] times (default 3), each time
    shrinking the interval to the two neighbouring grid cells.  Robust for
    non-unimodal but smooth objectives. *)

val grid_max2 :
  steps:int ->
  lo1:float -> hi1:float ->
  lo2:float -> hi2:float ->
  (float -> float -> float) ->
  (float * float) * float
(** Two-dimensional grid maximization with one refinement pass. *)
