type result =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Infeasible

let epsilon = 1e-9

(* Standard tableau simplex with slack variables.  Variables 0..n-1 are the
   original ones, n..n+m-1 the slacks.  [basis.(r)] is the variable basic in
   row r.  Bland's rule (smallest index) prevents cycling. *)

type tableau = {
  m : int;
  n : int;  (* original variable count *)
  t : float array array;  (* m rows x (n + m + 1) columns; last col = rhs *)
  obj : float array;  (* reduced-cost row, length n + m + 1 *)
  basis : int array;
}

let pivot tb ~row ~col =
  let width = Array.length tb.obj in
  let p = tb.t.(row).(col) in
  for j = 0 to width - 1 do
    tb.t.(row).(j) <- tb.t.(row).(j) /. p
  done;
  for r = 0 to tb.m - 1 do
    if r <> row then begin
      let factor = tb.t.(r).(col) in
      if Float.abs factor > 0. then
        for j = 0 to width - 1 do
          tb.t.(r).(j) <- tb.t.(r).(j) -. (factor *. tb.t.(row).(j))
        done
    end
  done;
  let factor = tb.obj.(col) in
  if Float.abs factor > 0. then
    for j = 0 to width - 1 do
      tb.obj.(j) <- tb.obj.(j) -. (factor *. tb.t.(row).(j))
    done;
  tb.basis.(row) <- col

(* Run simplex iterations until optimal or unbounded.  [allowed] restricts
   entering variables (used to keep artificials out in phase two). *)
let iterate tb ~allowed =
  let width = Array.length tb.obj - 1 in
  let rec loop steps =
    if steps > 10_000 then failwith "Simplex.iterate: too many pivots";
    (* Bland: entering variable = smallest index with positive reduced cost
       (we maximize, so improving columns have obj > eps). *)
    let entering = ref (-1) in
    (try
       for j = 0 to width - 1 do
         if allowed j && tb.obj.(j) > epsilon then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test, Bland tie-break on basis variable index. *)
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to tb.m - 1 do
        let a = tb.t.(r).(col) in
        if a > epsilon then begin
          let ratio = tb.t.(r).(width) /. a in
          if
            ratio < !best_ratio -. epsilon
            || (Float.abs (ratio -. !best_ratio) <= epsilon
               && (!best_row < 0 || tb.basis.(r) < tb.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := r
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot tb ~row:!best_row ~col;
        loop (steps + 1)
      end
    end
  in
  loop 0

let solve ~c ~a ~b =
  let m = Array.length a in
  let n = Array.length c in
  if Array.length b <> m then invalid_arg "Simplex.solve: |b| <> rows of A";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Simplex.solve: ragged A")
    a;
  (* Normalize rows to non-negative rhs; rows with negative rhs get an
     artificial variable for phase one. *)
  let needs_artificial = Array.map (fun bi -> bi < 0.) b in
  let n_art =
    Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 needs_artificial
  in
  let width = n + m + n_art + 1 in
  let t = Array.make_matrix m width 0. in
  let basis = Array.make m 0 in
  let art_index = ref (n + m) in
  for r = 0 to m - 1 do
    let flip = needs_artificial.(r) in
    let sign = if flip then -1. else 1. in
    for j = 0 to n - 1 do
      t.(r).(j) <- sign *. a.(r).(j)
    done;
    t.(r).(n + r) <- sign *. 1.;
    t.(r).(width - 1) <- sign *. b.(r);
    if flip then begin
      t.(r).(!art_index) <- 1.;
      basis.(r) <- !art_index;
      incr art_index
    end
    else basis.(r) <- n + r
  done;
  let mk_obj coeffs =
    let obj = Array.make width 0. in
    Array.iteri (fun j v -> obj.(j) <- v) coeffs;
    obj
  in
  let reduce_obj tb =
    (* Make the objective row consistent with the current basis. *)
    for r = 0 to tb.m - 1 do
      let v = tb.obj.(tb.basis.(r)) in
      if Float.abs v > 0. then
        for j = 0 to width - 1 do
          tb.obj.(j) <- tb.obj.(j) -. (v *. tb.t.(r).(j))
        done
    done
  in
  let phase2 tb =
    tb.obj |> Array.iteri (fun j _ -> tb.obj.(j) <- 0.);
    Array.iteri (fun j v -> tb.obj.(j) <- v) c;
    reduce_obj tb;
    match iterate tb ~allowed:(fun j -> j < n + m) with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make n 0. in
        for r = 0 to m - 1 do
          if tb.basis.(r) < n then solution.(tb.basis.(r)) <- tb.t.(r).(width - 1)
        done;
        let objective =
          Array.fold_left ( +. ) 0.
            (Array.mapi (fun j cj -> cj *. solution.(j)) c)
        in
        Optimal { objective; solution }
  in
  if n_art = 0 then begin
    let tb = { m; n; t; obj = mk_obj (Array.make n 0.); basis } in
    phase2 tb
  end
  else begin
    (* Phase one: minimize the sum of artificials, i.e. maximize its
       negation. *)
    let phase1_c = Array.make width 0. in
    for j = n + m to n + m + n_art - 1 do
      phase1_c.(j) <- -1.
    done;
    let tb = { m; n; t; obj = phase1_c; basis } in
    reduce_obj tb;
    (match iterate tb ~allowed:(fun _ -> true) with
    | `Unbounded -> failwith "Simplex.solve: phase one unbounded (bug)"
    | `Optimal -> ());
    (* Feasible iff all artificials are zero. *)
    let infeasible =
      Array.exists
        (fun r -> basis.(r) >= n + m && tb.t.(r).(width - 1) > 1e-7)
        (Array.init m (fun r -> r))
    in
    if infeasible then Infeasible else phase2 tb
  end
