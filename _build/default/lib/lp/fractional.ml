let triangle_cost ~b ~block_size ~t =
  let beta = (b /. block_size) +. 1. in
  t +. (beta *. t *. (t -. 1.) /. 2.)

let theorem5 ~i ~h =
  if i <= h then infinity
  else begin
    (* maximize r s.t. i*r <= h, r <= 1 *)
    match
      Simplex.solve ~c:[| 1. |] ~a:[| [| i |]; [| 1. |] |] ~b:[| h; 1. |]
    with
    | Simplex.Optimal { objective = r; _ } ->
        if r >= 1. -. 1e-12 then infinity else 1. /. (1. -. r)
    | Simplex.Unbounded | Simplex.Infeasible ->
        failwith "Fractional.theorem5: unexpected LP status"
  end

(* For fixed t, the Theorem 6 objective s(t-1) is maximized at
   s = min(h / C(t), 1 / t); we keep this analytic since it is a single
   variable, and use the simplex solver for the genuinely 2-d Theorem 7. *)
let theorem6_at ~b ~block_size ~h t =
  if t <= 1. then 1.
  else begin
    let c = triangle_cost ~b ~block_size ~t in
    let s = Float.min (h /. c) (1. /. t) in
    let gain = s *. (t -. 1.) in
    if gain >= 1. -. 1e-12 then infinity else 1. /. (1. -. gain)
  end

let theorem6 ~b ~block_size ~h =
  let f = theorem6_at ~b ~block_size ~h in
  let _, best =
    Grid_opt.grid_max ~steps:2048 ~lo:1. ~hi:block_size f
  in
  (* The objective is unimodal in t; also probe the boundary. *)
  Float.max best (f block_size)

let theorem7_inner ~t ~i ~b ~block_size ~h =
  (* maximize r + (t-1) s  s.t.  i r + C(t) s <= h,  r + t s <= 1 *)
  let c = triangle_cost ~b ~block_size ~t in
  match
    Simplex.solve
      ~c:[| 1.; t -. 1. |]
      ~a:[| [| i; c |]; [| 1.; t |] |]
      ~b:[| h; 1. |]
  with
  | Simplex.Optimal { solution; _ } -> Some (solution.(0), solution.(1))
  | Simplex.Infeasible -> None
  | Simplex.Unbounded -> failwith "Fractional.theorem7_inner: unbounded"

let theorem7_at ~i ~b ~block_size ~h t =
  match theorem7_inner ~t ~i ~b ~block_size ~h with
  | None -> 1.
  | Some (r, s) ->
      let gain = r +. (s *. (t -. 1.)) in
      if gain >= 1. -. 1e-12 then infinity else 1. /. (1. -. gain)

let theorem7 ~i ~b ~block_size ~h =
  let f = theorem7_at ~i ~b ~block_size ~h in
  let _, best = Grid_opt.grid_max ~steps:2048 ~lo:1. ~hi:block_size f in
  Float.max best (f block_size)
