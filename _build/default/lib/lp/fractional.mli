(** Numeric solutions of the paper's Section-5.2 optimization programs.

    The paper derives closed-form competitive-ratio upper bounds (Theorems
    5-7) by solving small fractional programs.  This module solves the same
    programs numerically — the inner linear part with the {!Simplex} solver,
    the remaining free variable [t] (items loaded per miss) by grid search —
    so the closed forms in [Gc_bounds] can be cross-checked mechanically
    (the authors used Mathematica; we use this module).

    All quantities are in items: [i] = item-layer size, [b] = block-layer
    size, [block_size] = B, [h] = offline cache size. *)

val theorem5 : i:float -> h:float -> float
(** Temporal-locality-only program: maximize [1/(1-r)] subject to
    [r*i <= h], [r <= 1].  Equals [i/(i-h)] for [i > h], infinite
    otherwise. *)

val theorem6 : b:float -> block_size:float -> h:float -> float
(** Spatial-locality-only program: maximize [1/(1 - s(t-1))] over [s >= 0],
    [1 <= t <= B], subject to [s*C(t) <= h] and [s*t <= 1], where
    [C(t) = t + (b/B + 1) * t(t-1)/2] is the triangle space cost of loading
    [t] items that must each outlive the previous by [b/B + 1] accesses. *)

val theorem7 : i:float -> b:float -> block_size:float -> h:float -> float
(** Combined program: maximize [1/(1 - r - s(t-1))] subject to
    [r*i + s*C(t) <= h] and [r + s*t <= 1]. *)

val theorem7_inner :
  t:float -> i:float -> b:float -> block_size:float -> h:float ->
  (float * float) option
(** Optimal [(r, s)] of the combined program for a fixed [t], via simplex;
    [None] if the LP is infeasible (cannot happen for [h >= 0]). *)

val triangle_cost : b:float -> block_size:float -> t:float -> float
(** [C(t)] above. *)
