(** Terminal line charts, so the bench harness can render the paper's
    figures directly in its output.

    Multiple series share one canvas; each series gets a marker character.
    Axes can be linear or log10 (Figure 3 and 6 are log-log).  Points with
    non-finite y (e.g. the Block Cache's divergence) are skipped. *)

type scale = Linear | Log10

type series = {
  marker : char;
  label : string;
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  ?title:string ->
  series list ->
  string
(** Returns a multi-line chart (default 72x20 plot area) with a legend and
    axis ranges.  Raises [Invalid_argument] if no finite points exist or a
    log axis sees a non-positive value. *)
