let render ?(max_items = 26) ~trace ~schedule () =
  let n = Gc_trace.Trace.length trace in
  if Array.length schedule <> n then
    invalid_arg "Occupancy.render: schedule length differs from trace";
  (* Assign row labels by order of first residency. *)
  let order = Hashtbl.create 32 in
  let label item =
    match Hashtbl.find_opt order item with
    | Some c -> c
    | None ->
        let idx = Hashtbl.length order in
        if idx >= max_items then
          invalid_arg "Occupancy.render: too many distinct items";
        let c = Char.chr (Char.code 'a' + idx) in
        Hashtbl.add order item c;
        c
  in
  (* Replay the schedule, recording residency per (item, time). *)
  let resident = Hashtbl.create 32 in
  let cells = Array.make_matrix max_items n ' ' in
  let misses = Array.make n false in
  for pos = 0 to n - 1 do
    let x = Gc_trace.Trace.get trace pos in
    let { Gc_offline.Schedule.load; evict } = schedule.(pos) in
    List.iter (fun v -> Hashtbl.remove resident v) evict;
    if not (Hashtbl.mem resident x) then misses.(pos) <- true;
    List.iter
      (fun y ->
        ignore (label y);
        Hashtbl.replace resident y ())
      load;
    if not (Hashtbl.mem resident x) then
      invalid_arg "Occupancy.render: schedule leaves a request unserved";
    Hashtbl.iter
      (fun item () ->
        let row = Char.code (label item) - Char.code 'a' in
        cells.(row).(pos) <- (if item = x then '#' else '='))
      resident
  done;
  let rows_used = Hashtbl.length order in
  let buf = Buffer.create ((n + 8) * (rows_used + 3)) in
  Buffer.add_string buf "      ";
  for pos = 0 to n - 1 do
    Buffer.add_char buf (if misses.(pos) then '*' else ' ')
  done;
  Buffer.add_string buf "   (* = miss)\n";
  (* Rows in label order. *)
  let by_label = Array.make rows_used 0 in
  Hashtbl.iter
    (fun item c -> by_label.(Char.code c - Char.code 'a') <- item)
    order;
  Array.iteri
    (fun row item ->
      Buffer.add_string buf (Printf.sprintf "%4d %c" item (Char.chr (Char.code 'a' + row)));
      for pos = 0 to n - 1 do
        Buffer.add_char buf cells.(row).(pos)
      done;
      Buffer.add_char buf '\n')
    by_label;
  Buffer.add_string buf "      ";
  Buffer.add_string buf (String.make n '-');
  Buffer.add_string buf "> time (accesses)\n";
  Buffer.contents buf
