lib/plot/occupancy.ml: Array Buffer Char Gc_offline Gc_trace Hashtbl List Printf String
