lib/plot/occupancy.mli: Gc_offline Gc_trace
