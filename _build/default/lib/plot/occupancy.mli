(** Space-time occupancy diagrams — the paper's Figure 5, rendered from a
    real schedule.

    The paper's Section 5.2 analysis "visualizes the optimal cache's
    performance on a trace as a rectangle, with one axis representing the
    time in units of accesses, and the other representing cache space".
    Given a recorded schedule (per-access loads and evictions), this module
    draws exactly that: one row per item, one column per access, a bar
    while the item is resident.

    Intended for small demonstration traces (≤ ~60 accesses, ≤ ~26 items):
    items are labelled a-z by first appearance. *)

val render :
  ?max_items:int ->
  trace:Gc_trace.Trace.t ->
  schedule:Gc_offline.Schedule.t ->
  unit ->
  string
(** Rows are items (labelled by first residency); columns are accesses.
    Cell legend: ['#'] resident and requested this access, ['='] resident,
    [' '] absent, ['!'] requested but absent would be a model violation and
    raises.  A header row marks misses with ['*'].  Raises
    [Invalid_argument] if the trace exceeds [max_items] (default 26)
    distinct items. *)
