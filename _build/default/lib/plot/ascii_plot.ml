type scale = Linear | Log10

type series = {
  marker : char;
  label : string;
  points : (float * float) list;
}

let transform = function
  | Linear -> fun v -> v
  | Log10 ->
      fun v ->
        if v <= 0. then
          invalid_arg "Ascii_plot: non-positive value on a log axis"
        else log10 v

let finite (x, y) = Float.is_finite x && Float.is_finite y

let render ?(width = 72) ?(height = 20) ?(x_scale = Linear)
    ?(y_scale = Linear) ?title series =
  let tx = transform x_scale and ty = transform y_scale in
  let pts =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun p -> if finite p then Some (s.marker, p) else None)
          s.points)
      series
  in
  if pts = [] then invalid_arg "Ascii_plot.render: no finite points";
  let xs = List.map (fun (_, (x, _)) -> tx x) pts in
  let ys = List.map (fun (_, (_, y)) -> ty y) pts in
  let fmin = List.fold_left Float.min infinity in
  let fmax = List.fold_left Float.max neg_infinity in
  let x0 = fmin xs and x1 = fmax xs in
  let y0 = fmin ys and y1 = fmax ys in
  let xspan = if x1 > x0 then x1 -. x0 else 1. in
  let yspan = if y1 > y0 then y1 -. y0 else 1. in
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun (marker, (x, y)) ->
      let cx =
        int_of_float
          (Float.round ((tx x -. x0) /. xspan *. float_of_int (width - 1)))
      in
      let cy =
        int_of_float
          (Float.round ((ty y -. y0) /. yspan *. float_of_int (height - 1)))
      in
      (* y axis grows upward: row 0 is the top. *)
      grid.(height - 1 - cy).(cx) <- marker)
    pts;
  let buf = Buffer.create ((width + 10) * (height + 6)) in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let back s v = match s with Linear -> v | Log10 -> Float.pow 10. v in
  Buffer.add_string buf
    (Printf.sprintf "y: %.3g .. %.3g%s\n" (back y_scale y0) (back y_scale y1)
       (if y_scale = Log10 then " (log)" else ""));
  Array.iter
    (fun row ->
      Buffer.add_string buf "  |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf "  +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "x: %.3g .. %.3g%s\n" (back x_scale x0) (back x_scale x1)
       (if x_scale = Log10 then " (log)" else ""));
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "  %c = %s\n" s.marker s.label))
    series;
  Buffer.contents buf
