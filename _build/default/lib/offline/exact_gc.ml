let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

(* All subsets of the bits in [mask] with exactly [size] bits set. *)
let subsets_of_size mask size =
  let bits =
    let rec collect m acc =
      if m = 0 then acc
      else begin
        let low = m land -m in
        collect (m lxor low) (low :: acc)
      end
    in
    collect mask []
  in
  let out = ref [] in
  let rec choose chosen remaining need =
    if need = 0 then out := chosen :: !out
    else
      match remaining with
      | [] -> ()
      | bit :: rest ->
          if List.length remaining >= need then begin
            choose (chosen lor bit) rest (need - 1);
            choose chosen rest need
          end
  in
  choose 0 bits size;
  !out

(* All subsets of [mask] (used for load choices within a block). *)
let all_subsets mask =
  let rec go sub acc =
    let acc = sub :: acc in
    if sub = 0 then acc else go ((sub - 1) land mask) acc
  in
  go mask []

(* Shared solver core: returns the memo table plus the dense encoding so
   [solve_schedule] can reconstruct an optimal schedule. *)
let solve_core ?(max_states = 5_000_000) ~k trace =
  let universe = Gc_trace.Trace.universe trace in
  let u = Array.length universe in
  if u > 62 then invalid_arg "Exact_gc.solve: more than 62 distinct items";
  let dense = Hashtbl.create (2 * u) in
  Array.iteri (fun idx item -> Hashtbl.add dense item idx) universe;
  let blocks = trace.Gc_trace.Trace.blocks in
  (* Per dense item: mask of same-block items that appear in the trace. *)
  let block_mask =
    Array.map
      (fun item ->
        let blk = Gc_trace.Block_map.block_of blocks item in
        Array.fold_left
          (fun acc other ->
            if Gc_trace.Block_map.block_of blocks other = blk then
              acc lor (1 lsl Hashtbl.find dense other)
            else acc)
          0 universe)
      universe
  in
  let n = Gc_trace.Trace.length trace in
  let requests =
    Array.init n (fun pos -> Hashtbl.find dense (Gc_trace.Trace.get trace pos))
  in
  let memo : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec go pos cache =
    if pos = n then 0
    else begin
      let r = requests.(pos) in
      let rbit = 1 lsl r in
      if cache land rbit <> 0 then go (pos + 1) cache
      else begin
        match Hashtbl.find_opt memo (pos, cache) with
        | Some v -> v
        | None ->
            if Hashtbl.length memo > max_states then
              failwith "Exact_gc.solve: state budget exceeded";
            let best = ref max_int in
            (* Choose which block-mates to load alongside r... *)
            let optional = block_mask.(r) land lnot cache land lnot rbit in
            List.iter
              (fun extra ->
                let load = extra lor rbit in
                let loaded_count = popcount load in
                let occupied = popcount cache in
                let over = occupied + loaded_count - k in
                if loaded_count <= k then begin
                  (* ... and, if over capacity, which cached items to evict
                     (exactly [over]: evicting more never helps). *)
                  let evict_sets =
                    if over <= 0 then [ 0 ] else subsets_of_size cache over
                  in
                  List.iter
                    (fun evict ->
                      let cache' = (cache land lnot evict) lor load in
                      let cost = 1 + go (pos + 1) cache' in
                      if cost < !best then best := cost)
                    evict_sets
                end)
              (all_subsets optional);
            Hashtbl.add memo (pos, cache) !best;
            !best
      end
    end
  in
  if k < 1 then invalid_arg "Exact_gc.solve: k must be >= 1";
  let cost = go 0 0 in
  (cost, memo, universe, block_mask, requests)

let solve ?max_states ~k trace =
  let cost, _, _, _, _ = solve_core ?max_states ~k trace in
  cost

let solve_schedule ?max_states ~k trace =
  let total, memo, universe, block_mask, requests = solve_core ?max_states ~k trace in
  let n = Array.length requests in
  let cost_of pos cache =
    if pos = n then Some 0
    else begin
      let r = requests.(pos) in
      if cache land (1 lsl r) <> 0 then None (* hits handled separately *)
      else Hashtbl.find_opt memo (pos, cache)
    end
  in
  (* Cheapest completion from (pos, cache); hits recurse transparently. *)
  let rec value pos cache =
    if pos = n then 0
    else begin
      let r = requests.(pos) in
      if cache land (1 lsl r) <> 0 then value (pos + 1) cache
      else
        match cost_of pos cache with
        | Some v -> v
        | None -> failwith "Exact_gc.solve_schedule: state missing from memo"
    end
  in
  let items_of_mask mask =
    let out = ref [] in
    Array.iteri
      (fun idx item -> if mask land (1 lsl idx) <> 0 then out := item :: !out)
      universe;
    List.rev !out
  in
  let actions = Array.make n { Schedule.load = []; evict = [] } in
  let cache = ref 0 in
  for pos = 0 to n - 1 do
    let r = requests.(pos) in
    let rbit = 1 lsl r in
    if !cache land rbit <> 0 then
      actions.(pos) <- { Schedule.load = []; evict = [] }
    else begin
      let target = value pos !cache in
      (* Re-enumerate this state's choices and take one achieving the memo
         value. *)
      let optional = block_mask.(r) land lnot !cache land lnot rbit in
      let found = ref false in
      List.iter
        (fun extra ->
          if not !found then begin
            let load = extra lor rbit in
            let loaded_count = popcount load in
            let occupied = popcount !cache in
            let over = occupied + loaded_count - k in
            if loaded_count <= k then begin
              let evict_sets =
                if over <= 0 then [ 0 ] else subsets_of_size !cache over
              in
              List.iter
                (fun evict ->
                  if not !found then begin
                    let cache' = (!cache land lnot evict) lor load in
                    if 1 + value (pos + 1) cache' = target then begin
                      found := true;
                      actions.(pos) <-
                        {
                          Schedule.load = items_of_mask load;
                          evict = items_of_mask evict;
                        };
                      cache := cache'
                    end
                  end)
                evict_sets
            end
          end)
        (all_subsets optional);
      if not !found then
        failwith "Exact_gc.solve_schedule: reconstruction failed"
    end
  done;
  (total, actions)
