type t = {
  mutable prio : int array;
  mutable item : int array;
  mutable len : int;
}

let create () = { prio = Array.make 64 0; item = Array.make 64 0; len = 0 }

let size t = t.len

let swap t i j =
  let p = t.prio.(i) and v = t.item.(i) in
  t.prio.(i) <- t.prio.(j);
  t.item.(i) <- t.item.(j);
  t.prio.(j) <- p;
  t.item.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(parent) < t.prio.(i) then begin
      swap t parent i;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.len && t.prio.(l) > t.prio.(!largest) then largest := l;
  if r < t.len && t.prio.(r) > t.prio.(!largest) then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let push t ~prio ~item =
  if t.len = Array.length t.prio then begin
    let grow a =
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit a 0 bigger 0 t.len;
      bigger
    in
    t.prio <- grow t.prio;
    t.item <- grow t.item
  end;
  t.prio.(t.len) <- prio;
  t.item.(t.len) <- item;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_top t =
  let p = t.prio.(0) and v = t.item.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.prio.(0) <- t.prio.(t.len);
    t.item.(0) <- t.item.(t.len);
    sift_down t 0
  end;
  (p, v)

let rec pop_valid t ~is_valid =
  if t.len = 0 then None
  else begin
    let prio, item = pop_top t in
    if is_valid ~prio ~item then Some (prio, item) else pop_valid t ~is_valid
  end

let rec peek_valid t ~is_valid =
  if t.len = 0 then None
  else begin
    let prio = t.prio.(0) and item = t.item.(0) in
    if is_valid ~prio ~item then Some (prio, item)
    else begin
      ignore (pop_top t);
      peek_valid t ~is_valid
    end
  end
