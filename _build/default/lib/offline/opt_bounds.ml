let compulsory trace = Gc_trace.Trace.distinct_blocks trace

let window_bound trace ~h ~window =
  if window < 1 then invalid_arg "Opt_bounds.window_bound: window < 1";
  let blocks = trace.Gc_trace.Trace.blocks in
  let n = Gc_trace.Trace.length trace in
  let total = ref 0 in
  let seen = Hashtbl.create 64 in
  let pos = ref 0 in
  while !pos < n do
    Hashtbl.reset seen;
    let stop = min n (!pos + window) in
    for p = !pos to stop - 1 do
      Hashtbl.replace seen
        (Gc_trace.Block_map.block_of blocks (Gc_trace.Trace.get trace p))
        ()
    done;
    total := !total + max 0 (Hashtbl.length seen - h);
    pos := stop
  done;
  !total

let best_window_bound trace ~h =
  let n = Gc_trace.Trace.length trace in
  let best = ref (compulsory trace) in
  let w = ref (max 1 (h / 2)) in
  while !w <= n do
    best := max !best (window_bound trace ~h ~window:!w);
    w := max (!w + 1) (!w * 3 / 2)
  done;
  !best

let ratio_interval ~online trace ~h =
  let upper_opt = Clairvoyant.cost ~k:h trace in
  let lower_opt = best_window_bound trace ~h in
  let lo =
    if upper_opt = 0 then infinity
    else float_of_int online /. float_of_int upper_opt
  in
  let hi =
    if lower_opt = 0 then infinity
    else float_of_int online /. float_of_int lower_opt
  in
  (lo, hi)
