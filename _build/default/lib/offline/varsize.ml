type instance = {
  sizes : int array;
  capacity : int;
  requests : int array;
}

let validate t =
  let m = Array.length t.sizes in
  if m = 0 then invalid_arg "Varsize: no items";
  Array.iter (fun s -> if s < 1 then invalid_arg "Varsize: size < 1") t.sizes;
  if t.capacity < 1 then invalid_arg "Varsize: capacity < 1";
  Array.iter
    (fun r ->
      if r < 0 || r >= m then invalid_arg "Varsize: request out of range";
      if t.sizes.(r) > t.capacity then
        invalid_arg "Varsize: requested item larger than the cache")
    t.requests

let exact ?(max_states = 5_000_000) t =
  validate t;
  let m = Array.length t.sizes in
  if m > 30 then invalid_arg "Varsize.exact: more than 30 items";
  let total_size mask =
    let acc = ref 0 in
    for v = 0 to m - 1 do
      if mask land (1 lsl v) <> 0 then acc := !acc + t.sizes.(v)
    done;
    !acc
  in
  (* Enumerate all subsets of [mask]. *)
  let all_subsets mask =
    let rec go sub acc =
      let acc = sub :: acc in
      if sub = 0 then acc else go ((sub - 1) land mask) acc
    in
    go mask []
  in
  let n = Array.length t.requests in
  let memo : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec go pos cache =
    if pos = n then 0
    else begin
      let r = t.requests.(pos) in
      let rbit = 1 lsl r in
      if cache land rbit <> 0 then go (pos + 1) cache
      else begin
        match Hashtbl.find_opt memo (pos, cache) with
        | Some v -> v
        | None ->
            if Hashtbl.length memo > max_states then
              failwith "Varsize.exact: state budget exceeded";
            let best = ref max_int in
            let used = total_size cache in
            List.iter
              (fun evict ->
                let cache' = cache land lnot evict in
                let used' = used - total_size evict in
                if used' + t.sizes.(r) <= t.capacity then begin
                  let cost = 1 + go (pos + 1) (cache' lor rbit) in
                  if cost < !best then best := cost
                end)
              (all_subsets cache);
            Hashtbl.add memo (pos, cache) !best;
            !best
      end
    end
  in
  go 0 0

let random_instance rng ~n_items ~max_size ~capacity ~length =
  let sizes =
    Array.init n_items (fun _ ->
        min capacity (1 + Gc_trace.Rng.int rng max_size))
  in
  let requests = Array.init length (fun _ -> Gc_trace.Rng.int rng n_items) in
  { sizes; capacity; requests }
