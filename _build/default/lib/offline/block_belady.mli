(** Belady's MIN at block granularity: the offline-optimal {e Block Cache}.

    Loads and evicts whole blocks; the victim is the block whose next
    reference (to any of its items) is furthest in the future.  Optimal
    among block-granularity policies by Belady's argument applied to the
    block-projected trace.

    Must be driven with exactly its creation trace, in order. *)

val create : k:int -> Gc_trace.Trace.t -> Gc_cache.Policy.t
(** Requires [k >= block size]. *)

val cost : k:int -> Gc_trace.Trace.t -> int
