type t = {
  trace : Gc_trace.Trace.t;
  capacity : int;
  active_sets : int array array;
}

let reduce (inst : Varsize.instance) =
  Varsize.validate inst;
  let next_id = ref 0 in
  let active_sets =
    Array.map
      (fun z ->
        Array.init z (fun _ ->
            let id = !next_id in
            incr next_id;
            id))
      inst.Varsize.sizes
  in
  let block_map = Gc_trace.Block_map.of_blocks (Array.to_list active_sets) in
  let requests = ref [] in
  Array.iter
    (fun v ->
      let active = active_sets.(v) in
      let z = Array.length active in
      (* z round-robin sweeps of the z-item active set. *)
      for _ = 1 to z do
        Array.iter (fun item -> requests := item :: !requests) active
      done)
    inst.Varsize.requests;
  {
    trace =
      Gc_trace.Trace.make block_map (Array.of_list (List.rev !requests));
    capacity = inst.Varsize.capacity;
    active_sets;
  }

let verify ?max_states inst =
  let reduced = reduce inst in
  let vs_opt = Varsize.exact ?max_states inst in
  let gc_opt = Exact_gc.solve ?max_states ~k:reduced.capacity reduced.trace in
  if vs_opt = gc_opt then Ok (vs_opt, gc_opt)
  else
    Error
      (Printf.sprintf
         "reduction mismatch: varsize optimum %d, reduced GC optimum %d"
         vs_opt gc_opt)
