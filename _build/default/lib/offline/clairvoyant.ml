module P = struct
  type t = {
    k : int;
    trace : Gc_trace.Trace.t;
    nu : Next_use.t;
    mutable pos : int;
    cached : (int, unit) Hashtbl.t;
    current_nu : (int, int) Hashtbl.t;
    heap : Lazy_max_heap.t;
  }

  let name = "clairvoyant"
  let k t = t.k
  let mem t x = Hashtbl.mem t.cached x
  let occupancy t = Hashtbl.length t.cached

  let expect t x =
    if t.pos >= Gc_trace.Trace.length t.trace then
      invalid_arg "Clairvoyant: driven past the end of its trace";
    if Gc_trace.Trace.get t.trace t.pos <> x then
      invalid_arg "Clairvoyant: request does not match the trace"

  let set_nu t x nxt =
    Hashtbl.replace t.current_nu x nxt;
    Lazy_max_heap.push t.heap ~prio:nxt ~item:x

  let is_current t ~prio ~item =
    Hashtbl.mem t.cached item && Hashtbl.find_opt t.current_nu item = Some prio

  let evict_furthest t =
    match Lazy_max_heap.pop_valid t.heap ~is_valid:(is_current t) with
    | Some (_, v) ->
        Hashtbl.remove t.cached v;
        Hashtbl.remove t.current_nu v;
        v
    | None -> assert false

  (* Furthest-next-use cached item other than [exclude] (the request being
     served, which must stay resident).  [exclude]'s own entry, if popped,
     is re-pushed. *)
  let pop_furthest_excluding t ~exclude =
    let rec go stash =
      match Lazy_max_heap.pop_valid t.heap ~is_valid:(is_current t) with
      | None ->
          List.iter
            (fun (p, v) -> Lazy_max_heap.push t.heap ~prio:p ~item:v)
            stash;
          None
      | Some (p, v) when v = exclude -> go ((p, v) :: stash)
      | Some (p, v) ->
          List.iter
            (fun (p, v) -> Lazy_max_heap.push t.heap ~prio:p ~item:v)
            stash;
          Some (p, v)
    in
    go []

  let load t x nxt =
    Hashtbl.add t.cached x ();
    set_nu t x nxt

  let access t x =
    expect t x;
    let outcome =
      if Hashtbl.mem t.cached x then begin
        set_nu t x (Next_use.at t.nu t.pos);
        Gc_cache.Policy.Hit { evicted = [] }
      end
      else begin
        let evicted = ref [] in
        while Hashtbl.length t.cached >= t.k do
          evicted := evict_furthest t :: !evicted
        done;
        load t x (Next_use.at t.nu t.pos);
        let loaded = ref [ x ] in
        (* Spatial loads: uncached block-mates with a future use, nearest
           first; each is taken only while it improves on the would-be
           eviction victim. *)
        let blocks = t.trace.Gc_trace.Trace.blocks in
        let blk = Gc_trace.Block_map.block_of blocks x in
        let candidates =
          Gc_trace.Block_map.items_of blocks blk
          |> Array.to_seq
          |> Seq.filter_map (fun y ->
                 if y = x || Hashtbl.mem t.cached y then None
                 else
                   let nxt = Next_use.after t.nu ~pos:(t.pos + 1) ~item:y in
                   if nxt = Next_use.never then None else Some (nxt, y))
          |> List.of_seq
          |> List.sort compare
        in
        (try
           List.iter
             (fun (nxt, y) ->
               if Hashtbl.length t.cached < t.k then begin
                 load t y nxt;
                 loaded := y :: !loaded
               end
               else begin
                 match pop_furthest_excluding t ~exclude:x with
                 | Some (victim_nu, victim) when victim_nu > nxt ->
                     Hashtbl.remove t.cached victim;
                     Hashtbl.remove t.current_nu victim;
                     evicted := victim :: !evicted;
                     load t y nxt;
                     loaded := y :: !loaded
                 | Some (victim_nu, victim) ->
                     (* Not worth displacing: put the entry back and stop
                        (later candidates are even further away). *)
                     Lazy_max_heap.push t.heap ~prio:victim_nu ~item:victim;
                     raise Exit
                 | None -> raise Exit
               end)
             candidates
         with Exit -> ());
        Gc_cache.Policy.Miss { loaded = !loaded; evicted = !evicted }
      end
    in
    t.pos <- t.pos + 1;
    outcome
end

let create ~k trace =
  if k < 1 then invalid_arg "Clairvoyant.create: k must be >= 1";
  Gc_cache.Policy.Instance
    ( (module P),
      {
        P.k;
        trace;
        nu = Next_use.of_trace trace;
        pos = 0;
        cached = Hashtbl.create 256;
        current_nu = Hashtbl.create 256;
        heap = Lazy_max_heap.create ();
      } )

let cost ~k trace =
  let m = Gc_cache.Simulator.run (create ~k trace) trace in
  m.Gc_cache.Metrics.misses
