(** Next-use precomputation shared by the offline policies.

    [never] marks "no further use"; it compares greater than every position
    so max-comparisons work directly. *)

val never : int
(** [max_int]. *)

type t

val of_trace : Gc_trace.Trace.t -> t

val at : t -> int -> int
(** [at t pos] is the next position after [pos] at which the item requested
    at [pos] is requested again ([never] if none). *)

val after : t -> pos:int -> item:int -> int
(** [after t ~pos ~item] is the first position [>= pos] at which [item] is
    requested ([never] if none).  [pos] must move forward monotonically per
    item between calls with the same [t] — the implementation walks each
    item's occurrence list with a cursor. *)

val reset_cursors : t -> unit
(** Rewind the per-item cursors used by {!after} (for re-running a trace). *)
