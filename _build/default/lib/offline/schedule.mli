(** Explicit offline schedules and their certification.

    A schedule lists, per access, the items loaded and evicted.  The checker
    replays it against the trace under the GC caching rules and either
    returns its cost (number of misses) or explains the first violation —
    this is how adversarial constructions' claimed OPT costs are certified
    without trusting the code that produced them. *)

type action = { load : int list; evict : int list }

type t = action array

val record : Gc_cache.Policy.t -> Gc_trace.Trace.t -> t * Gc_cache.Metrics.t
(** Run a policy over a trace and record its outcomes as a schedule. *)

val check : Gc_trace.Trace.t -> capacity:int -> t -> (int, string) result
(** [check trace ~capacity s] replays [s]: evictions must hit cached items,
    loads happen only on misses, stay within the requested item's block,
    include the requested item, and occupancy never exceeds [capacity].
    Returns the number of misses. *)

val cost : t -> int
(** Number of accesses with a non-empty load (= misses, for a valid
    schedule). *)
