(** Belady's MIN: offline-optimal {e item-granularity} replacement.

    Loads only the requested item and evicts the cached item whose next use
    is furthest in the future — optimal for traditional caching (unit size,
    unit cost), and therefore the optimal {e Item Cache} in GC caching
    (spatial loads are what it forgoes).

    The returned policy must be driven with exactly the trace it was created
    from, in order; it raises [Invalid_argument] otherwise. *)

val create : k:int -> Gc_trace.Trace.t -> Gc_cache.Policy.t

val cost : k:int -> Gc_trace.Trace.t -> int
(** Total misses of Belady's MIN on the trace. *)
