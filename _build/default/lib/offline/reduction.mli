(** The Theorem-1 reduction: variable-size caching → GC caching.

    For every variable-size item [v] of (integer) size [z], the reduction
    creates one block whose {e active set} holds [z] fresh GC items.  Every
    request to [v] becomes [z] round-robin sweeps over the active set
    ([z * z] accesses); the repetition forces any optimal GC cache to load
    and evict active sets atomically, so the optimal GC cost equals the
    optimal variable-size cost (see the paper's proof and Figure 2).

    The paper's preliminary size-scaling step (rational → integral sizes)
    is assumed done: {!Varsize.instance} already carries integer sizes. *)

type t = {
  trace : Gc_trace.Trace.t;  (** The generated GC caching trace. *)
  capacity : int;  (** Cache size of the GC instance (same as the input's). *)
  active_sets : int array array;
      (** [active_sets.(v)] lists the GC items standing for item [v]. *)
}

val reduce : Varsize.instance -> t

val verify : ?max_states:int -> Varsize.instance -> (int * int, string) result
(** Solve both sides exactly; [Ok (varsize_opt, gc_opt)] when they agree,
    [Error _] describing the mismatch otherwise. *)
