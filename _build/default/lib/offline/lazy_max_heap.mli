(** Max-heap of (priority, item) pairs with lazy invalidation.

    Offline policies repeatedly need "the cached item with the furthest next
    use"; priorities change on every re-reference, so we push fresh entries
    and discard stale ones at pop time against a caller-supplied validity
    check. *)

type t

val create : unit -> t

val push : t -> prio:int -> item:int -> unit

val pop_valid : t -> is_valid:(prio:int -> item:int -> bool) -> (int * int) option
(** Pop entries until one satisfies [is_valid]; returns [(prio, item)] or
    [None] if the heap drains. *)

val peek_valid : t -> is_valid:(prio:int -> item:int -> bool) -> (int * int) option
(** Like {!pop_valid} but leaves the returned entry in the heap (stale
    entries above it are still discarded). *)

val size : t -> int
