module P = struct
  type t = {
    k : int;
    trace : Gc_trace.Trace.t;
    nu : Next_use.t;
    mutable pos : int;
    cached : (int, unit) Hashtbl.t;
    current_nu : (int, int) Hashtbl.t;  (* cached item -> its next use *)
    heap : Lazy_max_heap.t;
  }

  let name = "belady"
  let k t = t.k
  let mem t x = Hashtbl.mem t.cached x
  let occupancy t = Hashtbl.length t.cached

  let expect t x =
    if t.pos >= Gc_trace.Trace.length t.trace then
      invalid_arg "Belady: driven past the end of its trace";
    if Gc_trace.Trace.get t.trace t.pos <> x then
      invalid_arg "Belady: request does not match the trace"

  let refresh t x =
    let nxt = Next_use.at t.nu t.pos in
    Hashtbl.replace t.current_nu x nxt;
    Lazy_max_heap.push t.heap ~prio:nxt ~item:x

  let is_current t ~prio ~item =
    Hashtbl.mem t.cached item && Hashtbl.find_opt t.current_nu item = Some prio

  let evict_furthest t =
    match Lazy_max_heap.pop_valid t.heap ~is_valid:(is_current t) with
    | Some (_, v) ->
        Hashtbl.remove t.cached v;
        Hashtbl.remove t.current_nu v;
        v
    | None -> assert false

  let access t x =
    expect t x;
    let outcome =
      if Hashtbl.mem t.cached x then begin
        refresh t x;
        Gc_cache.Policy.Hit { evicted = [] }
      end
      else begin
        let evicted = ref [] in
        while Hashtbl.length t.cached >= t.k do
          evicted := evict_furthest t :: !evicted
        done;
        Hashtbl.add t.cached x ();
        refresh t x;
        Gc_cache.Policy.Miss { loaded = [ x ]; evicted = !evicted }
      end
    in
    t.pos <- t.pos + 1;
    outcome
end

let create ~k trace =
  if k < 1 then invalid_arg "Belady.create: k must be >= 1";
  Gc_cache.Policy.Instance
    ( (module P),
      {
        P.k;
        trace;
        nu = Next_use.of_trace trace;
        pos = 0;
        cached = Hashtbl.create 256;
        current_nu = Hashtbl.create 256;
        heap = Lazy_max_heap.create ();
      } )

let cost ~k trace =
  let m = Gc_cache.Simulator.run (create ~k trace) trace in
  m.Gc_cache.Metrics.misses
