(** Exact offline optimum for GC caching by memoized exhaustive search.

    Offline GC caching is NP-complete (Theorem 1), so this solver is
    exponential and intended for small instances: it enumerates, at every
    miss, all subsets of the block to load and all minimal eviction sets,
    memoizing on (position, cache contents).  Items never requested by the
    trace are excluded from loading — bringing them in can only waste space.

    Used to validate the reduction of Theorem 1, the clairvoyant heuristic,
    and every online policy's cost on randomized small instances. *)

val solve : ?max_states:int -> k:int -> Gc_trace.Trace.t -> int
(** Optimal number of misses.  Requires the trace to touch at most 62
    distinct items.  Raises [Failure] if the memo table would exceed
    [max_states] (default [5_000_000]). *)

val solve_schedule :
  ?max_states:int -> k:int -> Gc_trace.Trace.t -> int * Schedule.t
(** Like {!solve}, but also reconstructs one optimal schedule from the memo
    table (per-access loads and evictions) — e.g. to render the paper's
    Figure-2 space-time diagrams with [Gc_plot.Occupancy]. *)
