(** Variable-size caching in the fault model (Chrobak et al.), with an exact
    solver.

    Items have integer sizes; every miss costs 1 regardless of size.  This
    is the problem the paper reduces {e from} to prove GC caching
    NP-complete (Theorem 1); the exact solver lets tests verify that the
    reduction preserves optimal cost. *)

type instance = {
  sizes : int array;  (** [sizes.(v)] is the size of item [v]; all [>= 1]. *)
  capacity : int;
  requests : int array;  (** Requests over items [0 .. |sizes| - 1]. *)
}

val validate : instance -> unit
(** Raises [Invalid_argument] on malformed instances (empty sizes, items out
    of range, an item larger than the cache that is requested, ...). *)

val exact : ?max_states:int -> instance -> int
(** Optimal number of misses (memoized exhaustive search; small instances
    only, at most 30 items). *)

val random_instance :
  Gc_trace.Rng.t ->
  n_items:int ->
  max_size:int ->
  capacity:int ->
  length:int ->
  instance
(** Random instance generator for property tests; sizes are uniform in
    [\[1, max_size\]] and capped at [capacity]. *)
