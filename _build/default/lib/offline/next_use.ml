let never = max_int

type t = {
  next : int array;  (* next.(pos) = next position of same item, or never *)
  occurrences : (int, int array) Hashtbl.t;  (* item -> positions, ascending *)
  cursors : (int, int) Hashtbl.t;  (* item -> index into occurrences *)
}

let of_trace trace =
  let n = Gc_trace.Trace.length trace in
  let next = Array.make n never in
  let last = Hashtbl.create 256 in
  for pos = n - 1 downto 0 do
    let item = Gc_trace.Trace.get trace pos in
    (match Hashtbl.find_opt last item with
    | Some p -> next.(pos) <- p
    | None -> ());
    Hashtbl.replace last item pos
  done;
  let lists = Hashtbl.create 256 in
  for pos = n - 1 downto 0 do
    let item = Gc_trace.Trace.get trace pos in
    let tail = Option.value ~default:[] (Hashtbl.find_opt lists item) in
    Hashtbl.replace lists item (pos :: tail)
  done;
  let occurrences = Hashtbl.create 256 in
  Hashtbl.iter
    (fun item positions -> Hashtbl.add occurrences item (Array.of_list positions))
    lists;
  { next; occurrences; cursors = Hashtbl.create 256 }

let at t pos = t.next.(pos)

let after t ~pos ~item =
  match Hashtbl.find_opt t.occurrences item with
  | None -> never
  | Some positions ->
      let n = Array.length positions in
      let c = ref (Option.value ~default:0 (Hashtbl.find_opt t.cursors item)) in
      while !c < n && positions.(!c) < pos do
        incr c
      done;
      Hashtbl.replace t.cursors item !c;
      if !c < n then positions.(!c) else never

let reset_cursors t = Hashtbl.reset t.cursors
