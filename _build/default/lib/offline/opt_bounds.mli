(** Certified lower bounds on the offline optimum for traces too large for
    {!Exact_gc}.

    Together with a feasible schedule's cost (an upper bound, e.g. from
    {!Clairvoyant}), these bracket OPT and let competitive ratios be bounded
    on arbitrary traces: for online cost [c],
    [c / upper <= c / OPT <= c / lower]. *)

val compulsory : Gc_trace.Trace.t -> int
(** Every distinct block must be loaded at least once: OPT >= number of
    distinct blocks (valid for any cache size). *)

val window_bound : Gc_trace.Trace.t -> h:int -> window:int -> int
(** Partition the trace into consecutive windows of [window] accesses; a
    cache of [h] items covers at most [h] blocks when a window starts, and
    each miss admits items of one block, so OPT misses at least
    [max 0 (distinct_blocks(w) - h)] times in each window [w].  Summed over
    disjoint windows this is a valid lower bound. *)

val best_window_bound : Gc_trace.Trace.t -> h:int -> int
(** {!window_bound} maximized over a geometric grid of window sizes,
    combined with {!compulsory}. *)

val ratio_interval :
  online:int -> Gc_trace.Trace.t -> h:int -> float * float
(** [(lo, hi)] bracketing the true competitive ratio [online / OPT]:
    [lo = online / clairvoyant_cost] (OPT can only be cheaper than the
    clairvoyant schedule) and [hi = online / best_window_bound]. *)
