(** A clairvoyant GC-caching heuristic: feasible, near-optimal schedules.

    Offline GC caching is NP-complete (Theorem 1), so no polynomial exact
    policy exists unless P = NP.  This policy produces a {e feasible}
    offline schedule whose cost upper-bounds OPT's:

    - on a miss it loads the requested item plus, nearest-next-use first,
      any uncached items of the block whose next use precedes the next use
      of the item that would have to be evicted to make room for them
      (spatial loads are free, so a block-mate used sooner than the current
      furthest-use resident is always worth swapping in);
    - it evicts the cached item with the furthest next use (Belady rule).

    On the paper's lower-bound traces this heuristic realizes exactly the
    offline behaviour the proofs prescribe, so it certifies the adversary's
    claimed OPT cost; on small instances tests compare it against
    {!Exact_gc}.  Must be driven with exactly its creation trace. *)

val create : k:int -> Gc_trace.Trace.t -> Gc_cache.Policy.t

val cost : k:int -> Gc_trace.Trace.t -> int
