lib/offline/clairvoyant.ml: Array Gc_cache Gc_trace Hashtbl Lazy_max_heap List Next_use Seq
