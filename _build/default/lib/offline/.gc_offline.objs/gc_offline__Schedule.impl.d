lib/offline/schedule.ml: Array Format Gc_cache Gc_trace Hashtbl List Printf
