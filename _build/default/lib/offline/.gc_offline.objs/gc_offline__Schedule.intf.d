lib/offline/schedule.mli: Gc_cache Gc_trace
