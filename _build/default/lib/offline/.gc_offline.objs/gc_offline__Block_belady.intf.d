lib/offline/block_belady.mli: Gc_cache Gc_trace
