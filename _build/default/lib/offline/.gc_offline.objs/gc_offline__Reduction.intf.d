lib/offline/reduction.mli: Gc_trace Varsize
