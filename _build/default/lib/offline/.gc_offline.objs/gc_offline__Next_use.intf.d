lib/offline/next_use.mli: Gc_trace
