lib/offline/varsize.ml: Array Gc_trace Hashtbl List
