lib/offline/next_use.ml: Array Gc_trace Hashtbl Option
