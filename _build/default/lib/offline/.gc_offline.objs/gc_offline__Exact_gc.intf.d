lib/offline/exact_gc.mli: Gc_trace Schedule
