lib/offline/belady.ml: Gc_cache Gc_trace Hashtbl Lazy_max_heap Next_use
