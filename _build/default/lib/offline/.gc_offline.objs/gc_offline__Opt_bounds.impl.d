lib/offline/opt_bounds.ml: Clairvoyant Gc_trace Hashtbl
