lib/offline/lazy_max_heap.mli:
