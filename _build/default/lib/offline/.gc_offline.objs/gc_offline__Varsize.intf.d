lib/offline/varsize.mli: Gc_trace
