lib/offline/block_belady.ml: Array Gc_cache Gc_trace Hashtbl Lazy_max_heap Next_use
