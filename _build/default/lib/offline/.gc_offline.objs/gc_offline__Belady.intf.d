lib/offline/belady.mli: Gc_cache Gc_trace
