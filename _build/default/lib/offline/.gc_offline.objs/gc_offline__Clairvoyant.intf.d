lib/offline/clairvoyant.mli: Gc_cache Gc_trace
