lib/offline/opt_bounds.mli: Gc_trace
