lib/offline/lazy_max_heap.ml: Array
