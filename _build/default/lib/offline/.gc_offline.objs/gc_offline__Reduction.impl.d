lib/offline/reduction.ml: Array Exact_gc Gc_trace List Printf Varsize
