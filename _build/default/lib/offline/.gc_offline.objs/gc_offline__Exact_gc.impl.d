lib/offline/exact_gc.ml: Array Gc_trace Hashtbl List Schedule
