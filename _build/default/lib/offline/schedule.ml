type action = { load : int list; evict : int list }

type t = action array

let record policy trace =
  let actions = Array.make (Gc_trace.Trace.length trace) { load = []; evict = [] } in
  let metrics =
    Gc_cache.Simulator.run_with
      ~f:(fun pos _ outcome ->
        actions.(pos) <-
          (match outcome with
          | Gc_cache.Policy.Hit { evicted } -> { load = []; evict = evicted }
          | Gc_cache.Policy.Miss { loaded; evicted } ->
              { load = loaded; evict = evicted }))
      policy trace
  in
  (actions, metrics)

let cost t =
  Array.fold_left (fun acc a -> if a.load = [] then acc else acc + 1) 0 t

let check trace ~capacity t =
  let n = Gc_trace.Trace.length trace in
  if Array.length t <> n then Error "schedule length differs from trace"
  else begin
    let blocks = trace.Gc_trace.Trace.blocks in
    let cached = Hashtbl.create 256 in
    let misses = ref 0 in
    let error = ref None in
    let fail pos fmt =
      Format.kasprintf
        (fun s ->
          if !error = None then error := Some (Printf.sprintf "access %d: %s" pos s))
        fmt
    in
    (try
       for pos = 0 to n - 1 do
         let x = Gc_trace.Trace.get trace pos in
         let { load; evict } = t.(pos) in
         List.iter
           (fun v ->
             if not (Hashtbl.mem cached v) then begin
               fail pos "evicting uncached item %d" v;
               raise Exit
             end;
             Hashtbl.remove cached v)
           evict;
         let was_hit = Hashtbl.mem cached x in
         if was_hit then begin
           if load <> [] then begin
             fail pos "load on a hit";
             raise Exit
           end
         end
         else begin
           incr misses;
           if not (List.mem x load) then begin
             fail pos "miss without loading the requested item %d" x;
             raise Exit
           end;
           let blk = Gc_trace.Block_map.block_of blocks x in
           List.iter
             (fun y ->
               if Gc_trace.Block_map.block_of blocks y <> blk then begin
                 fail pos "loading %d from a foreign block" y;
                 raise Exit
               end;
               if Hashtbl.mem cached y then begin
                 fail pos "loading already-cached item %d" y;
                 raise Exit
               end;
               Hashtbl.add cached y ())
             load
         end;
         if Hashtbl.length cached > capacity then begin
           fail pos "occupancy %d exceeds capacity %d" (Hashtbl.length cached)
             capacity;
           raise Exit
         end
       done
     with Exit -> ());
    match !error with Some e -> Error e | None -> Ok !misses
  end
