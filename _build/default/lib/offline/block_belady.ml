module P = struct
  type t = {
    k : int;
    trace : Gc_trace.Trace.t;
    block_next : Next_use.t;  (* next use over the block-projected trace *)
    mutable pos : int;
    resident : (int, int array) Hashtbl.t;  (* block -> its items *)
    current_nu : (int, int) Hashtbl.t;  (* block -> its next use *)
    cached_items : (int, unit) Hashtbl.t;
    heap : Lazy_max_heap.t;
    mutable occ : int;
  }

  let name = "block-belady"
  let k t = t.k
  let mem t x = Hashtbl.mem t.cached_items x
  let occupancy t = t.occ

  let expect t x =
    if t.pos >= Gc_trace.Trace.length t.trace then
      invalid_arg "Block_belady: driven past the end of its trace";
    if Gc_trace.Trace.get t.trace t.pos <> x then
      invalid_arg "Block_belady: request does not match the trace"

  let refresh t blk =
    let nxt = Next_use.at t.block_next t.pos in
    Hashtbl.replace t.current_nu blk nxt;
    Lazy_max_heap.push t.heap ~prio:nxt ~item:blk

  let is_current t ~prio ~item =
    Hashtbl.mem t.resident item && Hashtbl.find_opt t.current_nu item = Some prio

  let evict_furthest t =
    match Lazy_max_heap.pop_valid t.heap ~is_valid:(is_current t) with
    | Some (_, blk) ->
        let items = Hashtbl.find t.resident blk in
        Hashtbl.remove t.resident blk;
        Hashtbl.remove t.current_nu blk;
        Array.iter (fun y -> Hashtbl.remove t.cached_items y) items;
        t.occ <- t.occ - Array.length items;
        Array.to_list items
    | None -> assert false

  let access t x =
    expect t x;
    let blocks = t.trace.Gc_trace.Trace.blocks in
    let blk = Gc_trace.Block_map.block_of blocks x in
    let outcome =
      if Hashtbl.mem t.resident blk then begin
        refresh t blk;
        Gc_cache.Policy.Hit { evicted = [] }
      end
      else begin
        let incoming = Gc_trace.Block_map.items_of blocks blk in
        let evicted = ref [] in
        while t.occ + Array.length incoming > t.k do
          evicted := evict_furthest t @ !evicted
        done;
        Hashtbl.add t.resident blk incoming;
        Array.iter (fun y -> Hashtbl.replace t.cached_items y ()) incoming;
        t.occ <- t.occ + Array.length incoming;
        refresh t blk;
        Gc_cache.Policy.Miss
          { loaded = Array.to_list incoming; evicted = !evicted }
      end
    in
    t.pos <- t.pos + 1;
    outcome
end

let block_projection trace =
  let blocks = trace.Gc_trace.Trace.blocks in
  let requests =
    Array.map
      (fun r -> Gc_trace.Block_map.block_of blocks r)
      trace.Gc_trace.Trace.requests
  in
  Gc_trace.Trace.make Gc_trace.Block_map.singleton requests

let create ~k trace =
  let bsize = Gc_trace.Block_map.block_size trace.Gc_trace.Trace.blocks in
  if k < bsize then invalid_arg "Block_belady.create: k smaller than block size";
  Gc_cache.Policy.Instance
    ( (module P),
      {
        P.k;
        trace;
        block_next = Next_use.of_trace (block_projection trace);
        pos = 0;
        resident = Hashtbl.create 256;
        current_nu = Hashtbl.create 256;
        cached_items = Hashtbl.create 1024;
        heap = Lazy_max_heap.create ();
        occ = 0;
      } )

let cost ~k trace =
  let m = Gc_cache.Simulator.run (create ~k trace) trace in
  m.Gc_cache.Metrics.misses
