let sequential ~n ~start ~step = Array.init n (fun idx -> start + (idx * step))

let matrix_row_major ~rows ~cols ~elem_bytes ~base =
  Array.init (rows * cols) (fun idx -> base + (idx * elem_bytes))

let matrix_col_major ~rows ~cols ~elem_bytes ~base =
  Array.init (rows * cols) (fun idx ->
      let c = idx / rows and r = idx mod rows in
      base + (((r * cols) + c) * elem_bytes))

let pointer_chase rng ~n ~nodes ~node_bytes ~base =
  let perm = Array.init nodes (fun i -> i) in
  Gc_trace.Rng.shuffle rng perm;
  Array.init n (fun idx -> base + (perm.(idx mod nodes) * node_bytes))

let zipf_records rng ~n ~records ~record_bytes ~alpha ~base =
  let z = Gc_trace.Zipf.create ~n:records ~alpha in
  let perm = Array.init records (fun i -> i) in
  Gc_trace.Rng.shuffle rng perm;
  Array.init n (fun _ ->
      base + (perm.(Gc_trace.Zipf.sample z rng) * record_bytes))

let interleave a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let ia = ref 0 and ib = ref 0 and pos = ref 0 in
  while !ia < la || !ib < lb do
    if !ia < la then begin
      out.(!pos) <- a.(!ia);
      incr ia;
      incr pos
    end;
    if !ib < lb then begin
      out.(!pos) <- b.(!ib);
      incr ib;
      incr pos
    end
  done;
  out

let read_write_mix rng ~addrs ~write_fraction =
  if write_fraction < 0. || write_fraction > 1. then
    invalid_arg "Workloads.read_write_mix: fraction out of [0,1]";
  Array.map
    (fun addr ->
      let op =
        if Gc_trace.Rng.float rng 1.0 < write_fraction then Writeback.Write
        else Writeback.Read
      in
      (op, addr))
    addrs

let log_append ~n ~base ~record_bytes =
  Array.init n (fun idx -> (Writeback.Write, base + (idx * record_bytes)))
