lib/memhier/hierarchy.mli: Gc_cache Gc_trace Geometry
