lib/memhier/writeback.mli: Gc_cache Gc_trace Geometry
