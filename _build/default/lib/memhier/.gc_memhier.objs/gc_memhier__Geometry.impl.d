lib/memhier/geometry.ml: Gc_trace
