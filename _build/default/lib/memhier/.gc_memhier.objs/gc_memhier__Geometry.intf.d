lib/memhier/geometry.mli: Gc_trace
