lib/memhier/writeback.ml: Array Gc_cache Geometry Hashtbl List
