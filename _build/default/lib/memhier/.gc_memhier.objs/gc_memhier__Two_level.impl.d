lib/memhier/two_level.ml: Array Gc_cache Gc_trace Geometry
