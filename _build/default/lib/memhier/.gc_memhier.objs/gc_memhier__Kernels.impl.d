lib/memhier/kernels.ml: Array Float Gc_trace
