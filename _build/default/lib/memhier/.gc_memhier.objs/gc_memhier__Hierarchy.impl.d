lib/memhier/hierarchy.ml: Array Gc_cache Geometry
