lib/memhier/workloads.ml: Array Gc_trace Writeback
