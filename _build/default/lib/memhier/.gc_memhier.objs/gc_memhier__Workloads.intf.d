lib/memhier/workloads.mli: Gc_trace Writeback
