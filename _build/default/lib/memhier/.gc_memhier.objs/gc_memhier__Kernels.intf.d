lib/memhier/kernels.mli: Gc_trace
