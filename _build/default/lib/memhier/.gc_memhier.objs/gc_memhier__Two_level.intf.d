lib/memhier/two_level.mli: Gc_cache Gc_trace Geometry
