type t = { line_bytes : int; row_bytes : int }

let create ~line_bytes ~row_bytes =
  if line_bytes < 1 || row_bytes < 1 then
    invalid_arg "Geometry.create: sizes must be positive";
  if row_bytes mod line_bytes <> 0 then
    invalid_arg "Geometry.create: line size must divide row size";
  { line_bytes; row_bytes }

let sram_dram = create ~line_bytes:64 ~row_bytes:4096
let dram_flash = create ~line_bytes:4096 ~row_bytes:(256 * 1024)

let lines_per_row t = t.row_bytes / t.line_bytes

let line_of_addr t addr =
  if addr < 0 then invalid_arg "Geometry.line_of_addr: negative address";
  addr / t.line_bytes

let row_of_addr t addr =
  if addr < 0 then invalid_arg "Geometry.row_of_addr: negative address";
  addr / t.row_bytes

let block_map t = Gc_trace.Block_map.uniform ~block_size:(lines_per_row t)
