(** Byte-address workload generators for the hierarchy simulator.

    These model the access patterns the paper's introduction motivates:
    streaming (high spatial locality), strided and column-major traversals
    (low spatial locality at row granularity), pointer chasing (none), and
    skewed key-value lookups. *)

val sequential : n:int -> start:int -> step:int -> int array
(** Addresses [start, start+step, ...]. *)

val matrix_row_major :
  rows:int -> cols:int -> elem_bytes:int -> base:int -> int array
(** Touch every element of a [rows x cols] matrix in row-major order. *)

val matrix_col_major :
  rows:int -> cols:int -> elem_bytes:int -> base:int -> int array
(** Column-major traversal of the same layout: adjacent accesses are
    [cols * elem_bytes] apart, defeating row-granularity locality when the
    pitch exceeds the row size. *)

val pointer_chase :
  Gc_trace.Rng.t -> n:int -> nodes:int -> node_bytes:int -> base:int -> int array
(** Walk a random permutation cycle over [nodes] records. *)

val zipf_records :
  Gc_trace.Rng.t ->
  n:int ->
  records:int ->
  record_bytes:int ->
  alpha:float ->
  base:int ->
  int array
(** Skewed record lookups (each lookup touches the record's first byte). *)

val interleave : int array -> int array -> int array
(** Round-robin mix of two streams (e.g. streaming + pointer chase). *)

val read_write_mix :
  Gc_trace.Rng.t ->
  addrs:int array ->
  write_fraction:float ->
  (Writeback.op * int) array
(** Tag each address of a stream as a write with the given probability. *)

val log_append :
  n:int -> base:int -> record_bytes:int -> (Writeback.op * int) array
(** Pure sequential writes — an append-only log, the friendliest write
    pattern for row-granularity write-back coalescing. *)
