(** A cache level in front of a larger-granularity backing store.

    Byte addresses are mapped to lines (items) and rows (blocks); any
    {!Gc_cache.Policy.t} manages the level's line population.  Accounting
    follows the GC cost model: every miss activates one row; the bytes
    actually moved depend on how many lines the policy chose to take from
    the open row. *)

type stats = {
  accesses : int;
  hits : int;
  misses : int;  (** = row activations: the unit-cost events. *)
  lines_loaded : int;
  bytes_loaded : int;
  spatial_hits : int;
  temporal_hits : int;
}

type t

val create :
  Geometry.t ->
  make_policy:(k:int -> blocks:Gc_trace.Block_map.t -> Gc_cache.Policy.t) ->
  capacity_lines:int ->
  t

val access : t -> int -> unit
(** Feed one byte address. *)

val run : t -> int array -> unit
(** Feed a whole address stream. *)

val stats : t -> stats

val geometry : t -> Geometry.t
