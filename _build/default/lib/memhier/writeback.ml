type op = Read | Write

type stats = {
  reads : int;
  writes : int;
  hits : int;
  misses : int;
  lines_loaded : int;
  dirty_evictions : int;
  writeback_rows : int;
  bytes_read : int;
  bytes_written : int;
}

type t = {
  geo : Geometry.t;
  driver : Gc_cache.Simulator.t;
  dirty : (int, unit) Hashtbl.t;  (* dirty lines *)
  mutable reads : int;
  mutable writes : int;
  mutable dirty_evictions : int;
  mutable writeback_rows : int;
}

let create geo ~make_policy ~capacity_lines =
  let blocks = Geometry.block_map geo in
  {
    geo;
    driver =
      Gc_cache.Simulator.create (make_policy ~k:capacity_lines ~blocks) blocks;
    dirty = Hashtbl.create 1024;
    reads = 0;
    writes = 0;
    dirty_evictions = 0;
    writeback_rows = 0;
  }

let account_evictions t evicted =
  (* Dirty lines leaving the cache are written back; lines of the same row
     evicted in the same event share one row write. *)
  let rows = Hashtbl.create 4 in
  List.iter
    (fun line ->
      if Hashtbl.mem t.dirty line then begin
        Hashtbl.remove t.dirty line;
        t.dirty_evictions <- t.dirty_evictions + 1;
        let row = line * t.geo.Geometry.line_bytes / t.geo.Geometry.row_bytes in
        if not (Hashtbl.mem rows row) then begin
          Hashtbl.add rows row ();
          t.writeback_rows <- t.writeback_rows + 1
        end
      end)
    evicted

let access t op addr =
  let line = Geometry.line_of_addr t.geo addr in
  (match op with
  | Read -> t.reads <- t.reads + 1
  | Write -> t.writes <- t.writes + 1);
  (match Gc_cache.Simulator.access t.driver line with
  | Gc_cache.Policy.Hit { evicted } -> account_evictions t evicted
  | Gc_cache.Policy.Miss { evicted; _ } -> account_evictions t evicted);
  if op = Write then Hashtbl.replace t.dirty line ()

let run t ops = Array.iter (fun (op, addr) -> access t op addr) ops

let flush t =
  let rows = Hashtbl.create 16 in
  Hashtbl.iter
    (fun line () ->
      t.dirty_evictions <- t.dirty_evictions + 1;
      let row = line * t.geo.Geometry.line_bytes / t.geo.Geometry.row_bytes in
      if not (Hashtbl.mem rows row) then begin
        Hashtbl.add rows row ();
        t.writeback_rows <- t.writeback_rows + 1
      end)
    t.dirty;
  Hashtbl.reset t.dirty

let stats t =
  let m = Gc_cache.Simulator.metrics t.driver in
  {
    reads = t.reads;
    writes = t.writes;
    hits = m.Gc_cache.Metrics.hits;
    misses = m.Gc_cache.Metrics.misses;
    lines_loaded = m.Gc_cache.Metrics.items_loaded;
    dirty_evictions = t.dirty_evictions;
    writeback_rows = t.writeback_rows;
    bytes_read = m.Gc_cache.Metrics.items_loaded * t.geo.Geometry.line_bytes;
    bytes_written = t.dirty_evictions * t.geo.Geometry.line_bytes;
  }
