type level_stats = {
  accesses : int;
  hits : int;
  misses : int;
  lines_loaded : int;
}

type stats = {
  l1 : level_stats;
  l2 : level_stats;
  row_opens : int;
  bytes_from_memory : int;
  bytes_l2_to_l1 : int;
}

type t = {
  geo : Geometry.t;
  l1 : Gc_cache.Simulator.t;
  l2 : Gc_cache.Simulator.t;
}

let create geo ~l1_policy ~l1_lines ~l2_policy ~l2_lines =
  let l1_blocks = Gc_trace.Block_map.singleton in
  let l2_blocks = Geometry.block_map geo in
  {
    geo;
    l1 = Gc_cache.Simulator.create (l1_policy ~k:l1_lines ~blocks:l1_blocks) l1_blocks;
    l2 = Gc_cache.Simulator.create (l2_policy ~k:l2_lines ~blocks:l2_blocks) l2_blocks;
  }

let access t addr =
  let line = Geometry.line_of_addr t.geo addr in
  match Gc_cache.Simulator.access t.l1 line with
  | Gc_cache.Policy.Hit _ -> ()
  | Gc_cache.Policy.Miss _ ->
      (* L1 fills from L2; only L1 misses reach the boundary. *)
      ignore (Gc_cache.Simulator.access t.l2 line)

let run t addrs = Array.iter (access t) addrs

let level_stats_of m =
  {
    accesses = m.Gc_cache.Metrics.accesses;
    hits = m.Gc_cache.Metrics.hits;
    misses = m.Gc_cache.Metrics.misses;
    lines_loaded = m.Gc_cache.Metrics.items_loaded;
  }

let stats t =
  let m1 = Gc_cache.Simulator.metrics t.l1 in
  let m2 = Gc_cache.Simulator.metrics t.l2 in
  let line_bytes = t.geo.Geometry.line_bytes in
  {
    l1 = level_stats_of m1;
    l2 = level_stats_of m2;
    row_opens = m2.Gc_cache.Metrics.misses;
    bytes_from_memory = m2.Gc_cache.Metrics.items_loaded * line_bytes;
    bytes_l2_to_l1 = m1.Gc_cache.Metrics.misses * line_bytes;
  }
