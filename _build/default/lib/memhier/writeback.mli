(** Read/write simulation with dirty-line tracking and write-back traffic.

    The paper restricts its theory to reads (footnote 1 notes writes can
    even have a different granularity); this substrate extension measures
    the write side of the same boundary: lines dirtied by stores must be
    written back when evicted, and dirty lines of the same row evicted
    together coalesce into one row write.

    The replacement policy is any {!Gc_cache.Policy.t}; dirtiness is
    tracked outside the policy from the outcomes it reports, so every
    policy in the registry works unchanged. *)

type op = Read | Write

type stats = {
  reads : int;
  writes : int;
  hits : int;
  misses : int;
  lines_loaded : int;
  dirty_evictions : int;  (** Dirty lines that had to be written back. *)
  writeback_rows : int;
      (** Row-write events: dirty lines evicted in one outcome coalesce
          per row. *)
  bytes_read : int;
  bytes_written : int;
}

type t

val create :
  Geometry.t ->
  make_policy:(k:int -> blocks:Gc_trace.Block_map.t -> Gc_cache.Policy.t) ->
  capacity_lines:int ->
  t

val access : t -> op -> int -> unit
(** Feed one byte address with its operation. *)

val run : t -> (op * int) array -> unit

val stats : t -> stats

val flush : t -> unit
(** Account write-backs for all lines still dirty in the cache (end of
    simulation). *)
