(** Byte-addressed geometry of a granularity boundary.

    The paper's motivating setting (Section 1): a cache whose own unit is a
    [line] (e.g. 64 B SRAM line) backed by a level whose unit is a larger
    [row] (e.g. 2-4 KB DRAM row, 4 KB flash page).  Items of the GC model
    are lines; blocks are rows; [B = row_bytes / line_bytes]. *)

type t = private { line_bytes : int; row_bytes : int }

val create : line_bytes:int -> row_bytes:int -> t
(** Requires positive sizes with [line_bytes] dividing [row_bytes]. *)

val sram_dram : t
(** 64 B lines in 4 KB rows: [B = 64] — the paper's Figure 3/6 block
    size. *)

val dram_flash : t
(** 4 KB pages in 256 KB flash erase regions: [B = 64] at page scale. *)

val lines_per_row : t -> int
(** The GC block size [B]. *)

val line_of_addr : t -> int -> int
(** Item id of a byte address. *)

val row_of_addr : t -> int -> int

val block_map : t -> Gc_trace.Block_map.t
(** The uniform block map with [B = lines_per_row]. *)
