(** A two-level hierarchy across a granularity boundary.

    L1 is a traditional line-granularity cache (every item its own block:
    it can only load what it asks for).  L2 sits at the boundary: its
    backing store serves whole rows, so L2 is a GC cache that may take any
    subset of the open row per miss.  This is the full setting of the
    paper's introduction — "block granularity changes at different levels
    of the memory/storage hierarchy" — with the GC freedom exactly where
    the granularity changes.

    Accounting: an access goes to L1; an L1 miss goes to L2; an L2 miss
    opens a row in memory.  Traffic from memory is whatever L2 chose to
    load; traffic L2 -> L1 is one line per L1 miss. *)

type level_stats = {
  accesses : int;
  hits : int;
  misses : int;
  lines_loaded : int;
}

type stats = {
  l1 : level_stats;
  l2 : level_stats;
  row_opens : int;  (** = L2 misses: the unit-cost events at the boundary. *)
  bytes_from_memory : int;
  bytes_l2_to_l1 : int;
}

type t

val create :
  Geometry.t ->
  l1_policy:(k:int -> blocks:Gc_trace.Block_map.t -> Gc_cache.Policy.t) ->
  l1_lines:int ->
  l2_policy:(k:int -> blocks:Gc_trace.Block_map.t -> Gc_cache.Policy.t) ->
  l2_lines:int ->
  t
(** [l1_policy] receives a singleton block map (no spatial freedom above
    the boundary); [l2_policy] receives the geometry's row-granularity
    block map. *)

val access : t -> int -> unit
(** Feed one byte address. *)

val run : t -> int array -> unit

val stats : t -> stats
