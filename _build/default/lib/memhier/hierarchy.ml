type stats = {
  accesses : int;
  hits : int;
  misses : int;
  lines_loaded : int;
  bytes_loaded : int;
  spatial_hits : int;
  temporal_hits : int;
}

type t = {
  geo : Geometry.t;
  driver : Gc_cache.Simulator.t;
}

let create geo ~make_policy ~capacity_lines =
  let blocks = Geometry.block_map geo in
  let policy = make_policy ~k:capacity_lines ~blocks in
  { geo; driver = Gc_cache.Simulator.create policy blocks }

let access t addr =
  ignore (Gc_cache.Simulator.access t.driver (Geometry.line_of_addr t.geo addr))

let run t addrs = Array.iter (access t) addrs

let stats t =
  let m = Gc_cache.Simulator.metrics t.driver in
  {
    accesses = m.Gc_cache.Metrics.accesses;
    hits = m.Gc_cache.Metrics.hits;
    misses = m.Gc_cache.Metrics.misses;
    lines_loaded = m.Gc_cache.Metrics.items_loaded;
    bytes_loaded =
      m.Gc_cache.Metrics.items_loaded * t.geo.Geometry.line_bytes;
    spatial_hits = m.Gc_cache.Metrics.spatial_hits;
    temporal_hits = m.Gc_cache.Metrics.temporal_hits;
  }

let geometry t = t.geo
