(** Generating traces with prescribed locality.

    Two generators:

    - {!power_law}: a tunable workload whose measured working-set function
      approximates [f n ~ n^(1/p)] with spatial-locality ratio
      [f/g ~ rho].  Fresh items arrive at a polynomially decaying rate (in
      runs of [rho] same-block items); other accesses revisit the recent
      working set.  Tests fit the measured profile with {!Concave_fit} and
      check [p] and [rho] are recovered.

    - {!Thm8}: the adversarial family from Theorem 8's proof (after Albers
      et al.): [k + 1] items partitioned into [g(L)] blocks, accessed in
      phases of [L = f_inv(k+1) - 2] accesses structured as [k - 1]
      repetitions, where repetition [j] starts at access [f_inv(j+1) - 1]
      of the phase and repeats one item the online cache is (preferably)
      missing.  Drives any {!Gc_trace.Adversary.ORACLE}. *)

val power_law :
  Gc_trace.Rng.t ->
  n:int ->
  p:float ->
  rho:float ->
  block_size:int ->
  Gc_trace.Trace.t
(** [p >= 1] growth exponent; [1 <= rho <= block_size] target [f/g]. *)

module Thm8 (O : Gc_trace.Adversary.ORACLE) : sig
  type result = {
    trace : Gc_trace.Trace.t;
    online_faults : int;  (** Measured faults of the oracle policy. *)
    accesses : int;
    bound_faults : float;
        (** [phases * g(L)]: the faults Theorem 8 guarantees. *)
  }

  val run :
    O.t ->
    k:int ->
    f_inv:(int -> int) ->
    g:(int -> int) ->
    block_size:int ->
    phases:int ->
    result
  (** Requires [f_inv (k+1) - 2 >= k - 1] (phases long enough to host the
      repetitions) and [g L >= 1]. *)
end
