type power_fit = { coeff : float; p : float; rmse : float }

let fit_power points =
  let usable =
    List.filter_map
      (fun (n, v) ->
        if n >= 1 && v >= 1 then
          Some (log (float_of_int n), log (float_of_int v))
        else None)
      points
  in
  let m = List.length usable in
  if m < 2 then invalid_arg "Concave_fit.fit_power: need >= 2 usable points";
  let mf = float_of_int m in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. usable in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. usable in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. usable in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. usable in
  let denom = (mf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Concave_fit.fit_power: degenerate points";
  (* log v = slope * log n + intercept, slope = 1/p. *)
  let slope = ((mf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. mf in
  let residual =
    List.fold_left
      (fun a (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        a +. (e *. e))
      0. usable
  in
  {
    coeff = exp intercept;
    p = (if slope <= 0. then infinity else 1. /. slope);
    rmse = sqrt (residual /. mf);
  }

let upper_concave_envelope points =
  let pts =
    points
    |> List.map (fun (n, v) -> (float_of_int n, float_of_int v))
    |> List.sort compare
  in
  match pts with
  | [] -> []
  | _ ->
      (* Upper hull by cross-product test. *)
      let cross (ox, oy) (ax, ay) (bx, by) =
        ((ax -. ox) *. (by -. oy)) -. ((ay -. oy) *. (bx -. ox))
      in
      let hull =
        List.fold_left
          (fun acc p ->
            let rec shrink = function
              | b :: a :: rest when cross a b p >= 0. -> shrink (a :: rest)
              | acc -> acc
            in
            p :: shrink acc)
          [] pts
        |> List.rev
      in
      (* Evaluate the hull (piecewise linear) back at the input ns. *)
      let eval x =
        let rec go = function
          | (x1, y1) :: ((x2, y2) :: _ as rest) ->
              if x <= x1 then y1
              else if x <= x2 then
                y1 +. ((y2 -. y1) *. (x -. x1) /. (x2 -. x1))
              else go rest
          | [ (_, y) ] -> y
          | [] -> 0.
        in
        go hull
      in
      List.map (fun (n, _) -> (n, eval (float_of_int n))) (List.sort compare points)
