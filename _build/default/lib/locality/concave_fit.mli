(** Fitting measured locality profiles to the analytic forms the bounds
    need.

    The fault-rate theorems take locality functions of the polynomial form
    [f n = c * n^(1/p)]; this module recovers [(c, p)] from a measured
    [(n, f n)] profile by least squares in log-log space, and builds the
    concave upper envelope of a profile (locality functions must be
    concave; raw window maxima of short traces can wobble). *)

type power_fit = { coeff : float; p : float; rmse : float }
(** [f n ~= coeff * n^(1/p)]; [rmse] is the log-space residual. *)

val fit_power : (int * int) list -> power_fit
(** Least-squares fit of [(n, value)] points; requires at least two points
    with [n >= 1] and [value >= 1]. *)

val upper_concave_envelope : (int * int) list -> (int * float) list
(** Monotone concave majorant of the points (Graham-scan upper hull in
    [(n, value)] space), evaluated at the input [n]s. *)
