(* Sliding-window distinct counting: advance a window of fixed size n over
   the trace, maintaining multiplicity counts; the max cardinality seen is
   f(n) (or g(n) on block ids). *)
let max_distinct proj trace n =
  let len = Gc_trace.Trace.length trace in
  if n <= 0 then 0
  else begin
    let counts = Hashtbl.create 256 in
    let distinct = ref 0 in
    let best = ref 0 in
    let add v =
      let c = Option.value ~default:0 (Hashtbl.find_opt counts v) in
      if c = 0 then incr distinct;
      Hashtbl.replace counts v (c + 1)
    in
    let drop v =
      let c = Hashtbl.find counts v in
      if c = 1 then begin
        Hashtbl.remove counts v;
        decr distinct
      end
      else Hashtbl.replace counts v (c - 1)
    in
    for pos = 0 to len - 1 do
      add (proj (Gc_trace.Trace.get trace pos));
      if pos >= n then drop (proj (Gc_trace.Trace.get trace (pos - n)));
      if pos >= n - 1 || pos = len - 1 then
        if !distinct > !best then best := !distinct
    done;
    !best
  end

let f_at trace n = max_distinct (fun r -> r) trace n

let g_at trace n =
  let blocks = trace.Gc_trace.Trace.blocks in
  max_distinct (Gc_trace.Block_map.block_of blocks) trace n

let profile trace ~windows =
  List.map (fun n -> (n, f_at trace n, g_at trace n)) windows

let geometric_windows trace ~steps =
  let len = Gc_trace.Trace.length trace in
  if len = 0 then []
  else begin
    let out = ref [] in
    for idx = steps downto 0 do
      let n =
        int_of_float
          (Float.round
             (Float.pow (float_of_int len) (float_of_int idx /. float_of_int steps)))
      in
      let n = max 1 (min len n) in
      match !out with
      | prev :: _ when prev = n -> ()
      | _ -> out := n :: !out
    done;
    List.sort_uniq compare !out
  end

let spatial_ratio_profile trace ~windows =
  List.map
    (fun n ->
      let g = g_at trace n in
      let ratio =
        if g = 0 then 1.0 else float_of_int (f_at trace n) /. float_of_int g
      in
      (n, ratio))
    windows

let inverse_f trace m =
  let len = Gc_trace.Trace.length trace in
  if f_at trace len < m then len + 1
  else begin
    let lo = ref 1 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if f_at trace mid >= m then hi := mid else lo := mid + 1
    done;
    !lo
  end
