(** Measuring a trace's locality functions [f(n)] and [g(n)].

    Following Albers, Favrholdt and Giel (extended by the paper's Section
    2), [f n] is the maximum number of distinct items in any window of [n]
    consecutive accesses, and [g n] the maximum number of distinct blocks.
    Both are non-decreasing and subadditive-ish; [g <= f <= B * g]. *)

val f_at : Gc_trace.Trace.t -> int -> int
(** [f_at trace n]: maximum distinct items over all windows of length [n];
    O(T) one pass. *)

val g_at : Gc_trace.Trace.t -> int -> int
(** Block version of {!f_at}. *)

val profile :
  Gc_trace.Trace.t -> windows:int list -> (int * int * int) list
(** [(n, f n, g n)] for each requested window size (each O(T)). *)

val geometric_windows : Gc_trace.Trace.t -> steps:int -> int list
(** Geometrically spaced window sizes from 1 to the trace length. *)

val spatial_ratio_profile :
  Gc_trace.Trace.t -> windows:int list -> (int * float) list
(** [(n, f n / g n)] — the paper's spatial-locality measure per scale. *)

val inverse_f : Gc_trace.Trace.t -> int -> int
(** [inverse_f trace m]: the smallest window length whose [f] reaches [m]
    (trace length + 1 if never).  Binary search over {!f_at} (valid because
    [f] is non-decreasing in [n]). *)
