let power_law rng ~n ~p ~rho ~block_size =
  if p < 1. then invalid_arg "Synthesis.power_law: p must be >= 1";
  if rho < 1. || rho > float_of_int block_size then
    invalid_arg "Synthesis.power_law: rho must be in [1, block_size]";
  let requests = Array.make n 0 in
  (* Recency order of distinct items, MRU at the end. *)
  let order = ref (Array.make 1024 0) in
  let len = ref 0 in
  let push x =
    if !len = Array.length !order then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !order 0 bigger 0 !len;
      order := bigger
    end;
    !order.(!len) <- x;
    incr len
  in
  let move_to_front_from idx =
    let x = !order.(idx) in
    Array.blit !order (idx + 1) !order idx (!len - idx - 1);
    !order.(!len - 1) <- x;
    x
  in
  (* Fresh items are dealt out in same-block runs of ~rho items, so the
     distinct-item to distinct-block ratio approaches rho. *)
  let next_block = ref 0 in
  let run_left = ref 0 in
  let run_pos = ref 0 in
  let fresh () =
    if !run_left <= 0 then begin
      (* Randomize run lengths around rho so the ratio holds in expectation
         even for fractional rho. *)
      let base = int_of_float rho in
      let frac = rho -. float_of_int base in
      run_left :=
        max 1 (base + if Gc_trace.Rng.float rng 1.0 < frac then 1 else 0);
      run_pos := 0;
      incr next_block
    end;
    let item = (((!next_block - 1) * block_size) + !run_pos) in
    incr run_pos;
    decr run_left;
    push item;
    item
  in
  (* Stack-distance sampling with P(D > d) ~ d^(1-p) gives working sets
     growing like n^(1/p). *)
  let sample_depth () =
    if p <= 1. then max_int
    else begin
      let u = Float.max 1e-12 (Gc_trace.Rng.float rng 1.0) in
      let d = Float.pow u (-1. /. (p -. 1.)) in
      if d > 1e9 then max_int else int_of_float d
    end
  in
  for t = 0 to n - 1 do
    let d = sample_depth () in
    let item =
      if d > !len then fresh () else move_to_front_from (!len - d)
    in
    requests.(t) <- item
  done;
  Gc_trace.Trace.make (Gc_trace.Block_map.uniform ~block_size) requests

module Thm8 (O : Gc_trace.Adversary.ORACLE) = struct
  type result = {
    trace : Gc_trace.Trace.t;
    online_faults : int;
    accesses : int;
    bound_faults : float;
  }

  let run o ~k ~f_inv ~g ~block_size ~phases =
    let phase_len = f_inv (k + 1) - 2 in
    if phase_len < k - 1 then
      invalid_arg "Synthesis.Thm8: f_inv(k+1) - 2 must be >= k - 1";
    let nb = max 1 (g phase_len) in
    if nb * block_size < k + 1 then
      invalid_arg "Synthesis.Thm8: g(L) blocks cannot host k+1 items";
    (* k + 1 items spread over nb blocks, filled block by block. *)
    let per_block = (k + 1 + nb - 1) / nb in
    let items =
      Array.init (k + 1) (fun idx ->
          let blk = idx / per_block and off = idx mod per_block in
          (blk * block_size) + off)
    in
    (* Repetition start offsets within a phase (0-indexed). *)
    let starts =
      Array.init (k - 1) (fun j0 ->
          let j = j0 + 1 in
          max j0 (f_inv (j + 1) - 2))
    in
    let requests = ref [] in
    let total = ref 0 in
    let faults = ref 0 in
    let access x =
      if not (O.mem o x) then incr faults;
      O.access o x;
      requests := x :: !requests;
      incr total
    in
    for _ = 1 to phases do
      let used = Hashtbl.create (k + 2) in
      let pick () =
        let fresh_and_uncached =
          Array.to_seq items
          |> Seq.filter (fun x -> not (Hashtbl.mem used x))
          |> Seq.filter (fun x -> not (O.mem o x))
          |> Seq.uncons
        in
        let chosen =
          match fresh_and_uncached with
          | Some (x, _) -> x
          | None -> (
              match
                Array.to_seq items
                |> Seq.filter (fun x -> not (Hashtbl.mem used x))
                |> Seq.uncons
              with
              | Some (x, _) -> x
              | None -> items.(0))
        in
        Hashtbl.replace used chosen ();
        chosen
      in
      for j = 0 to k - 2 do
        let stop = if j = k - 2 then phase_len else starts.(j + 1) in
        let start = starts.(j) in
        if stop > start then begin
          let x = pick () in
          for _ = start to stop - 1 do
            access x
          done
        end
      done
    done;
    {
      trace =
        Gc_trace.Trace.make
          (Gc_trace.Block_map.uniform ~block_size)
          (Array.of_list (List.rev !requests));
      online_faults = !faults;
      accesses = !total;
      bound_faults = float_of_int phases *. float_of_int (g phase_len);
    }
end
