lib/locality/concave_fit.ml: Float List
