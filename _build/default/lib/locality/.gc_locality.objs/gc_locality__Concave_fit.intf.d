lib/locality/concave_fit.mli:
