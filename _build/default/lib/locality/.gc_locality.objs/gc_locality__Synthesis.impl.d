lib/locality/synthesis.ml: Array Float Gc_trace Hashtbl List Seq
