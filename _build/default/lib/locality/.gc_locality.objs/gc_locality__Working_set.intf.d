lib/locality/working_set.mli: Gc_trace
