lib/locality/working_set.ml: Float Gc_trace Hashtbl List Option
