lib/locality/synthesis.mli: Gc_trace
