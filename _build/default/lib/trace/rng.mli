(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in this project flows through this module so that every
    experiment is reproducible from a single integer seed.  Splitmix64 is
    fast, has a full 2^64 period per stream, and supports cheap stream
    splitting, which we use to give independent generators to independent
    workload components. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of [t]'s subsequent output. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t n bound] draws [n] distinct integers
    uniformly from [\[0, bound)].  Requires [n <= bound]. *)
