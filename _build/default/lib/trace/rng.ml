type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: mix the counter into a well-distributed output. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  (* Derive a seed from the parent stream, then re-mix with a distinct
     constant so parent and child sequences do not overlap. *)
  let s = int64 t in
  { state = Int64.logxor s 0xA5A5A5A5A5A5A5A5L }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 t) mask) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t n bound =
  if n > bound then invalid_arg "Rng.sample_without_replacement: n > bound";
  if n * 3 >= bound then begin
    (* Dense case: shuffle a full range and take a prefix. *)
    let all = Array.init bound (fun i -> i) in
    shuffle t all;
    Array.sub all 0 n
  end else begin
    (* Sparse case: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * n) in
    let out = Array.make n 0 in
    let filled = ref 0 in
    while !filled < n do
      let v = int t bound in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
