(** Trace transformations for controlled experiments.

    Cache studies routinely need the {e same} reference stream under a
    different spatial layout: these transforms change how items map to
    blocks (or which items stand in for which) without touching the
    temporal order of the underlying references. *)

val with_block_size : Trace.t -> block_size:int -> Trace.t
(** Reinterpret the trace under a uniform block map of a different size —
    how measured spatial locality scales with [B] on fixed references. *)

val remap_items : Trace.t -> mapping:(int -> int) -> Trace.t
(** Apply an item renaming (must be injective on the trace's universe for
    the result to have the same temporal structure; not checked). *)

val shuffle_layout : Rng.t -> Trace.t -> Trace.t
(** Randomly permute the universe across block frames of the same size:
    destroys spatial locality while preserving the temporal reuse pattern
    exactly.  The baseline "how much was spatial buying us?" control. *)

val pack_blocks : Trace.t -> Trace.t
(** Rename items so that items first touched consecutively share blocks
    (first-touch packing) — an idealized cache-conscious allocator; the
    opposite control to {!shuffle_layout}. *)

val truncate : Trace.t -> n:int -> Trace.t
(** First [n] accesses. *)

val sample_strided : Trace.t -> keep_one_in:int -> Trace.t
(** Systematic sampling: keep every [keep_one_in]-th access (a cheap trace
    reducer; reuse distances are distorted, use with care). *)
