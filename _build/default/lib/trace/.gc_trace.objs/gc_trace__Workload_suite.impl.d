lib/trace/workload_suite.ml: Generators List Rng Trace
