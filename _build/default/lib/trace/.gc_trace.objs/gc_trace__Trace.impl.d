lib/trace/trace.ml: Array Block_map Format Hashtbl List
