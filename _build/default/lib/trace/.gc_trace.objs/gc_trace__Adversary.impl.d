lib/trace/adversary.ml: Array Block_map Hashtbl List Trace
