lib/trace/rng.mli:
