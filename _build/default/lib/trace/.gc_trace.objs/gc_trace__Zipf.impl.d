lib/trace/zipf.ml: Array Float Rng
