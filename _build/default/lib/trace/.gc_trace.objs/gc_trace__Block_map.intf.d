lib/trace/block_map.mli: Format
