lib/trace/trace.mli: Block_map Format
