lib/trace/adversary.mli: Trace
