lib/trace/transform.mli: Rng Trace
