lib/trace/generators.mli: Rng Trace
