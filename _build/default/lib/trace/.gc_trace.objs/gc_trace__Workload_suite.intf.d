lib/trace/workload_suite.mli: Trace
