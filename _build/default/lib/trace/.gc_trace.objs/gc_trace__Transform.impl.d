lib/trace/transform.ml: Array Block_map Hashtbl Rng Trace
