lib/trace/stats.ml: Array Block_map Hashtbl List Trace
