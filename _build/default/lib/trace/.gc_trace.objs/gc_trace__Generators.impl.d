lib/trace/generators.ml: Array Block_map List Rng Trace Zipf
