lib/trace/rng.ml: Array Hashtbl Int64
