lib/trace/trace_io.ml: Array Block_map Buffer Bytes Char Hashtbl In_channel List Out_channel Printf String Trace
