lib/trace/stats.mli: Hashtbl Trace
