lib/trace/zipf.mli: Rng
