lib/trace/block_map.ml: Array Format Hashtbl List
