type explicit = {
  b : int;  (* max block size *)
  block_of_item : (int, int) Hashtbl.t;
  items_of_block : (int, int array) Hashtbl.t;
  next_fresh : int ref;  (* next block id for items outside the partition *)
}

type t =
  | Uniform of int
  | Explicit of explicit

let uniform ~block_size =
  if block_size < 1 then invalid_arg "Block_map.uniform: block_size < 1";
  Uniform block_size

let singleton = Uniform 1

let of_blocks bs =
  let block_of_item = Hashtbl.create 64 in
  let items_of_block = Hashtbl.create 64 in
  let b = ref 1 in
  List.iteri
    (fun block items ->
      if Array.length items = 0 then invalid_arg "Block_map.of_blocks: empty block";
      b := max !b (Array.length items);
      let sorted = Array.copy items in
      Array.sort compare sorted;
      Array.iter
        (fun item ->
          if Hashtbl.mem block_of_item item then
            invalid_arg "Block_map.of_blocks: item in two blocks";
          Hashtbl.add block_of_item item block)
        sorted;
      Hashtbl.add items_of_block block sorted)
    bs;
  let next_fresh = ref (List.length bs) in
  Explicit { b = !b; block_of_item; items_of_block; next_fresh }

let block_size = function Uniform b -> b | Explicit e -> e.b

let block_of t item =
  match t with
  | Uniform b -> if item >= 0 then item / b else (item - b + 1) / b
  | Explicit e -> (
      match Hashtbl.find_opt e.block_of_item item with
      | Some blk -> blk
      | None ->
          (* Unlisted items get fresh singleton blocks, assigned lazily so
             that repeated queries are stable. *)
          let blk = !(e.next_fresh) in
          incr e.next_fresh;
          Hashtbl.add e.block_of_item item blk;
          Hashtbl.add e.items_of_block blk [| item |];
          blk)

let items_of t block =
  match t with
  | Uniform b -> Array.init b (fun j -> (block * b) + j)
  | Explicit e -> (
      match Hashtbl.find_opt e.items_of_block block with
      | Some items -> Array.copy items
      | None -> [||])

let same_block t i j = block_of t i = block_of t j

let is_uniform = function Uniform _ -> true | Explicit _ -> false

let pp fmt = function
  | Uniform b -> Format.fprintf fmt "uniform(B=%d)" b
  | Explicit e ->
      Format.fprintf fmt "explicit(B=%d, %d blocks)" e.b
        (Hashtbl.length e.items_of_block)
