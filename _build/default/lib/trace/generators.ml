let umap block_size = Block_map.uniform ~block_size

let check_pos name v = if v < 1 then invalid_arg ("Generators." ^ name)

let sequential ~n ~universe ~block_size =
  check_pos "sequential: universe" universe;
  Trace.make (umap block_size) (Array.init n (fun i -> i mod universe))

let strided ~n ~stride ~universe ~block_size =
  check_pos "strided: universe" universe;
  check_pos "strided: stride" stride;
  Trace.make (umap block_size) (Array.init n (fun i -> i * stride mod universe))

let uniform_random rng ~n ~universe ~block_size =
  check_pos "uniform_random: universe" universe;
  Trace.make (umap block_size) (Array.init n (fun _ -> Rng.int rng universe))

let zipf_items rng ~n ~universe ~block_size ~alpha =
  check_pos "zipf_items: universe" universe;
  let z = Zipf.create ~n:universe ~alpha in
  (* Shuffle rank -> item so that hot items are scattered across blocks. *)
  let perm = Array.init universe (fun i -> i) in
  Rng.shuffle rng perm;
  Trace.make (umap block_size)
    (Array.init n (fun _ -> perm.(Zipf.sample z rng)))

let zipf_blocks rng ~n ~blocks ~block_size ~alpha ~within =
  check_pos "zipf_blocks: blocks" blocks;
  let z = Zipf.create ~n:blocks ~alpha in
  let perm = Array.init blocks (fun i -> i) in
  Rng.shuffle rng perm;
  let cursor = Array.make blocks 0 in
  let pick_item blk =
    match within with
    | `First -> blk * block_size
    | `Uniform -> (blk * block_size) + Rng.int rng block_size
    | `Sequential ->
        let c = cursor.(blk) in
        cursor.(blk) <- (c + 1) mod block_size;
        (blk * block_size) + c
  in
  Trace.make (umap block_size)
    (Array.init n (fun _ -> pick_item perm.(Zipf.sample z rng)))

let spatial_mix rng ~n ~universe ~block_size ~p_spatial =
  check_pos "spatial_mix: universe" universe;
  if p_spatial < 0.0 || p_spatial > 1.0 then
    invalid_arg "Generators.spatial_mix: p_spatial out of [0,1]";
  let requests = Array.make n 0 in
  let current = ref (Rng.int rng universe) in
  for i = 0 to n - 1 do
    let next =
      if Rng.float rng 1.0 < p_spatial then begin
        let blk = !current / block_size in
        let base = blk * block_size in
        let limit = min block_size (universe - base) in
        base + Rng.int rng limit
      end
      else Rng.int rng universe
    in
    requests.(i) <- next;
    current := next
  done;
  Trace.make (umap block_size) requests

let working_set_phases rng ~block_size ~phases =
  let total = List.fold_left (fun acc (_, len) -> acc + len) 0 phases in
  let requests = Array.make total 0 in
  let pos = ref 0 in
  let base = ref 0 in
  List.iter
    (fun (ws, len) ->
      check_pos "working_set_phases: working set" ws;
      for _ = 1 to len do
        requests.(!pos) <- !base + Rng.int rng ws;
        incr pos
      done;
      base := !base + ws)
    phases;
  Trace.make (umap block_size) requests

let block_scan ~n_blocks ~repeats ~block_size =
  check_pos "block_scan: n_blocks" n_blocks;
  check_pos "block_scan: repeats" repeats;
  let per_block = block_size * repeats in
  let requests =
    Array.init (n_blocks * per_block) (fun i ->
        let blk = i / per_block in
        let off = i mod per_block mod block_size in
        (blk * block_size) + off)
  in
  Trace.make (umap block_size) requests

let interleave a b =
  if Block_map.block_size a.Trace.blocks <> Block_map.block_size b.Trace.blocks
  then invalid_arg "Generators.interleave: block size mismatch";
  let la = Trace.length a and lb = Trace.length b in
  let requests = Array.make (la + lb) 0 in
  let ia = ref 0 and ib = ref 0 and pos = ref 0 in
  while !ia < la || !ib < lb do
    if !ia < la then begin
      requests.(!pos) <- Trace.get a !ia;
      incr ia;
      incr pos
    end;
    if !ib < lb then begin
      requests.(!pos) <- Trace.get b !ib;
      incr ib;
      incr pos
    end
  done;
  Trace.make a.Trace.blocks requests

let concat_phases = Trace.concat

let pointer_chase rng ~n ~universe ~block_size =
  check_pos "pointer_chase: universe" universe;
  let perm = Array.init universe (fun i -> i) in
  Rng.shuffle rng perm;
  Trace.make (umap block_size) (Array.init n (fun i -> perm.(i mod universe)))

let markov rng ~n ~universe ~block_size ~p_switch =
  check_pos "markov: universe" universe;
  if p_switch < 0.0 || p_switch > 1.0 then
    invalid_arg "Generators.markov: p_switch out of [0,1]";
  let requests = Array.make n 0 in
  let streaming = ref true in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    if Rng.float rng 1.0 < p_switch then begin
      streaming := not !streaming;
      if !streaming then cursor := Rng.int rng universe
    end;
    if !streaming then begin
      requests.(i) <- !cursor;
      cursor := (!cursor + 1) mod universe
    end
    else requests.(i) <- Rng.int rng universe
  done;
  Trace.make (umap block_size) requests
