type histogram = {
  finite : int array;
  cold : int;
}

let frequencies proj t =
  let tbl = Hashtbl.create 256 in
  Trace.iter
    (fun r ->
      let v = proj r in
      match Hashtbl.find_opt tbl v with
      | Some c -> Hashtbl.replace tbl v (c + 1)
      | None -> Hashtbl.add tbl v 1)
    t;
  tbl

let item_frequencies t = frequencies (fun r -> r) t

let block_frequencies t = frequencies (Block_map.block_of t.Trace.blocks) t

(* Fenwick (binary indexed) tree over trace positions; used to count, for an
   access at position [i] whose value was last seen at position [j], how many
   *distinct* values were touched in (j, i).  We maintain a 0/1 array over
   positions where a 1 at position p means "the value accessed at p has not
   been accessed again since" — i.e. p is the last occurrence so far.  The
   prefix-sum query then counts distinct intervening values. *)
module Fenwick = struct
  type t = int array

  let create n : t = Array.make (n + 1) 0

  let add (t : t) i delta =
    let i = ref (i + 1) in
    let n = Array.length t - 1 in
    while !i <= n do
      t.(!i) <- t.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* sum of entries at positions [0..i] *)
  let prefix (t : t) i =
    let i = ref (i + 1) in
    let acc = ref 0 in
    while !i > 0 do
      acc := !acc + t.(!i);
      i := !i - (!i land - !i)
    done;
    !acc
end

let distances_of proj t =
  let n = Trace.length t in
  let fen = Fenwick.create n in
  let last_pos = Hashtbl.create 256 in
  let finite = Array.make (max n 1) 0 in
  let cold = ref 0 in
  let max_d = ref 0 in
  Trace.iteri
    (fun i r ->
      let v = proj r in
      (match Hashtbl.find_opt last_pos v with
      | None -> incr cold
      | Some j ->
          (* Distinct values strictly between positions j and i. *)
          let d = Fenwick.prefix fen (i - 1) - Fenwick.prefix fen j in
          finite.(d) <- finite.(d) + 1;
          if d > !max_d then max_d := d;
          Fenwick.add fen j (-1));
      Fenwick.add fen i 1;
      Hashtbl.replace last_pos v i)
    t;
  { finite = Array.sub finite 0 (!max_d + 1); cold = !cold }

let stack_distances t = distances_of (fun r -> r) t

let block_stack_distances t =
  distances_of (Block_map.block_of t.Trace.blocks) t

let lru_misses_at h k =
  (* An access at distance d hits in an LRU cache of size k iff d < k. *)
  let misses = ref h.cold in
  Array.iteri (fun d count -> if d >= k then misses := !misses + count) h.finite;
  !misses

let miss_curve h ~max_size =
  let curve = Array.make (max_size + 1) 0 in
  (* suffix sums: misses at size k = cold + sum_{d >= k} finite.(d) *)
  let total_finite = Array.fold_left ( + ) 0 h.finite in
  let acc = ref 0 in
  for k = 0 to max_size do
    (* acc = sum_{d < k} finite.(d) *)
    if k > 0 && k - 1 < Array.length h.finite then acc := !acc + h.finite.(k - 1);
    curve.(k) <- h.cold + total_finite - !acc
  done;
  curve

let spatial_ratio t =
  let blocks = Trace.distinct_blocks t in
  if blocks = 0 then 1.0
  else float_of_int (Trace.distinct_items t) /. float_of_int blocks

let block_run_lengths t =
  let n = Trace.length t in
  if n = 0 then [| 0 |]
  else begin
    let blocks = t.Trace.blocks in
    let runs = ref [] in
    let current = ref (Block_map.block_of blocks (Trace.get t 0)) in
    let len = ref 1 in
    let longest = ref 1 in
    for pos = 1 to n - 1 do
      let b = Block_map.block_of blocks (Trace.get t pos) in
      if b = !current then incr len
      else begin
        runs := !len :: !runs;
        if !len > !longest then longest := !len;
        current := b;
        len := 1
      end
    done;
    runs := !len :: !runs;
    if !len > !longest then longest := !len;
    let hist = Array.make (!longest + 1) 0 in
    List.iter (fun l -> hist.(l) <- hist.(l) + 1) !runs;
    hist
  end

let mean_block_run_length t =
  let hist = block_run_lengths t in
  let runs = ref 0 and weighted = ref 0 in
  Array.iteri
    (fun l count ->
      runs := !runs + count;
      weighted := !weighted + (l * count))
    hist;
  if !runs = 0 then 1.0 else float_of_int !weighted /. float_of_int !runs
