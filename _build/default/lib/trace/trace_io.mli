(** Plain-text trace serialization.

    Format (line-oriented, ASCII):
    {v
    gctrace 1
    blocks uniform <B>
    requests <n>
    <item> <item> ... (whitespace separated, any line breaking)
    v}
    or, for explicit partitions:
    {v
    gctrace 1
    blocks explicit <B> <nblocks>
    <item> <item> ...   (one line per block)
    requests <n>
    ...
    v} *)

val to_channel : out_channel -> Trace.t -> unit

val of_channel : in_channel -> Trace.t
(** Raises [Failure] on malformed input. *)

val save : string -> Trace.t -> unit
(** Write to a file path. *)

val load : string -> Trace.t

val to_string : Trace.t -> string

val of_string : string -> Trace.t

(** {1 Binary format}

    A compact varint encoding ("GCTB" magic): requests are zigzag-encoded
    deltas from the previous request, so sequential and spatially local
    traces compress to ~1 byte per access.  Explicit block maps are stored
    as per-block item lists. *)

val to_bytes : Trace.t -> bytes

val of_bytes : bytes -> Trace.t
(** Raises [Failure] on malformed input. *)

val save_binary : string -> Trace.t -> unit

val load_binary : string -> Trace.t
