let to_buffer buf (t : Trace.t) =
  Buffer.add_string buf "gctrace 1\n";
  let blocks = t.Trace.blocks in
  if Block_map.is_uniform blocks then
    Buffer.add_string buf
      (Printf.sprintf "blocks uniform %d\n" (Block_map.block_size blocks))
  else begin
    (* Collect the blocks actually referenced by the trace. *)
    let seen = Hashtbl.create 64 in
    let order = ref [] in
    Trace.iter
      (fun r ->
        let b = Block_map.block_of blocks r in
        if not (Hashtbl.mem seen b) then begin
          Hashtbl.add seen b ();
          order := b :: !order
        end)
      t;
    let block_ids = List.rev !order in
    Buffer.add_string buf
      (Printf.sprintf "blocks explicit %d %d\n"
         (Block_map.block_size blocks)
         (List.length block_ids));
    List.iter
      (fun b ->
        let items = Block_map.items_of blocks b in
        Array.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ' ';
            Buffer.add_string buf (string_of_int item))
          items;
        Buffer.add_char buf '\n')
      block_ids
  end;
  Buffer.add_string buf (Printf.sprintf "requests %d\n" (Trace.length t));
  Trace.iteri
    (fun i r ->
      if i > 0 then
        Buffer.add_char buf (if i mod 16 = 0 then '\n' else ' ');
      Buffer.add_string buf (string_of_int r))
    t;
  if Trace.length t > 0 then Buffer.add_char buf '\n'

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

let to_channel oc t = output_string oc (to_string t)

(* Tokenizing reader over a string. *)
type reader = { src : string; mutable pos : int }

let fail msg = failwith ("Trace_io: " ^ msg)

let is_space c = c = ' ' || c = '\n' || c = '\t' || c = '\r'

let next_token r =
  let n = String.length r.src in
  while r.pos < n && is_space r.src.[r.pos] do
    r.pos <- r.pos + 1
  done;
  if r.pos >= n then None
  else begin
    let start = r.pos in
    while r.pos < n && not (is_space r.src.[r.pos]) do
      r.pos <- r.pos + 1
    done;
    Some (String.sub r.src start (r.pos - start))
  end

let expect r what =
  match next_token r with
  | Some tok when tok = what -> ()
  | Some tok -> fail (Printf.sprintf "expected %S, got %S" what tok)
  | None -> fail (Printf.sprintf "expected %S, got end of input" what)

let next_int r =
  match next_token r with
  | Some tok -> (
      match int_of_string_opt tok with
      | Some v -> v
      | None -> fail (Printf.sprintf "expected integer, got %S" tok))
  | None -> fail "expected integer, got end of input"

(* Blocks of an explicit map are written one per line; re-tokenize by line. *)
let read_block_line r =
  let n = String.length r.src in
  while r.pos < n && (r.src.[r.pos] = ' ' || r.src.[r.pos] = '\n') do
    r.pos <- r.pos + 1
  done;
  let start = r.pos in
  while r.pos < n && r.src.[r.pos] <> '\n' do
    r.pos <- r.pos + 1
  done;
  let line = String.sub r.src start (r.pos - start) in
  line
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match int_of_string_opt s with
         | Some v -> v
         | None -> fail (Printf.sprintf "bad block item %S" s))
  |> Array.of_list

let of_string src =
  let r = { src; pos = 0 } in
  expect r "gctrace";
  let version = next_int r in
  if version <> 1 then fail (Printf.sprintf "unsupported version %d" version);
  expect r "blocks";
  let blocks =
    match next_token r with
    | Some "uniform" ->
        let b = next_int r in
        Block_map.uniform ~block_size:b
    | Some "explicit" ->
        let _b = next_int r in
        let nblocks = next_int r in
        let bs = List.init nblocks (fun _ -> read_block_line r) in
        Block_map.of_blocks bs
    | Some tok -> fail (Printf.sprintf "unknown block map kind %S" tok)
    | None -> fail "truncated header"
  in
  expect r "requests";
  let n = next_int r in
  let requests = Array.init n (fun _ -> next_int r) in
  Trace.make blocks requests

let of_channel ic = of_string (In_channel.input_all ic)

let save path t = Out_channel.with_open_text path (fun oc -> to_channel oc t)

let load path = In_channel.with_open_text path of_channel

(* ------------------------------------------------------- binary format *)

let magic = "GCTB"

let add_varint buf v =
  (* Unsigned LEB128. *)
  let v = ref v in
  let continue = ref true in
  while !continue do
    let low = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1

let unzigzag v = if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

type byte_reader = { src : bytes; mutable bpos : int }

let read_byte r =
  if r.bpos >= Bytes.length r.src then fail "binary: truncated";
  let c = Char.code (Bytes.get r.src r.bpos) in
  r.bpos <- r.bpos + 1;
  c

let read_varint r =
  let rec go shift acc =
    if shift > 62 then fail "binary: varint overflow";
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let to_bytes (t : Trace.t) =
  let buf = Buffer.create (Trace.length t * 2) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\001' (* version *);
  let blocks = t.Trace.blocks in
  if Block_map.is_uniform blocks then begin
    Buffer.add_char buf '\000';
    add_varint buf (Block_map.block_size blocks)
  end
  else begin
    Buffer.add_char buf '\001';
    add_varint buf (Block_map.block_size blocks);
    let seen = Hashtbl.create 64 in
    let order = ref [] in
    Trace.iter
      (fun r ->
        let b = Block_map.block_of blocks r in
        if not (Hashtbl.mem seen b) then begin
          Hashtbl.add seen b ();
          order := b :: !order
        end)
      t;
    let block_ids = List.rev !order in
    add_varint buf (List.length block_ids);
    List.iter
      (fun b ->
        let items = Block_map.items_of blocks b in
        add_varint buf (Array.length items);
        Array.iter (add_varint buf) items)
      block_ids
  end;
  add_varint buf (Trace.length t);
  let prev = ref 0 in
  Trace.iter
    (fun r ->
      add_varint buf (zigzag (r - !prev));
      prev := r)
    t;
  Buffer.to_bytes buf

let of_bytes src =
  let r = { src; bpos = 0 } in
  if Bytes.length src < 6 then fail "binary: too short";
  if Bytes.sub_string src 0 4 <> magic then fail "binary: bad magic";
  r.bpos <- 4;
  let version = read_byte r in
  if version <> 1 then fail (Printf.sprintf "binary: unsupported version %d" version);
  let blocks =
    match read_byte r with
    | 0 -> Block_map.uniform ~block_size:(read_varint r)
    | 1 ->
        let _b = read_varint r in
        let nblocks = read_varint r in
        let bs =
          List.init nblocks (fun _ ->
              let count = read_varint r in
              Array.init count (fun _ -> read_varint r))
        in
        Block_map.of_blocks bs
    | k -> fail (Printf.sprintf "binary: unknown block kind %d" k)
  in
  let n = read_varint r in
  let prev = ref 0 in
  let requests =
    Array.init n (fun _ ->
        let v = !prev + unzigzag (read_varint r) in
        prev := v;
        v)
  in
  Trace.make blocks requests

let save_binary path t =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc (to_bytes t))

let load_binary path =
  In_channel.with_open_bin path (fun ic ->
      of_bytes (Bytes.of_string (In_channel.input_all ic)))
