(** Trace statistics: frequencies, reuse, and Mattson stack distances.

    The stack-distance machinery implements Mattson et al.'s classic
    single-pass analysis: from one scan of the trace we obtain the LRU hit
    count for {e every} cache size simultaneously.  We run it both at item
    granularity (Item-Cache miss curve) and at block granularity (Block-Cache
    miss curve in units of blocks). *)

type histogram = {
  finite : int array;
      (** [finite.(d)] is the number of accesses at stack distance [d]
          (number of distinct values seen since the previous access to the
          same value).  Distance 0 means an immediate repeat. *)
  cold : int;  (** First-touch accesses (infinite distance). *)
}

val item_frequencies : Trace.t -> (int, int) Hashtbl.t
(** Request count per item. *)

val block_frequencies : Trace.t -> (int, int) Hashtbl.t
(** Request count per block. *)

val stack_distances : Trace.t -> histogram
(** Item-granularity LRU stack distances, O(T log T). *)

val block_stack_distances : Trace.t -> histogram
(** Block-granularity LRU stack distances (the trace projected onto block
    ids). *)

val lru_misses_at : histogram -> int -> int
(** [lru_misses_at h k]: misses an LRU cache of size [k] incurs on the
    analyzed trace (distance >= k is a miss; cold accesses always miss). *)

val miss_curve : histogram -> max_size:int -> int array
(** [miss_curve h ~max_size].(k) = misses of an LRU cache of size [k], for
    [k] in [0 .. max_size]. *)

val spatial_ratio : Trace.t -> float
(** Distinct items divided by distinct blocks over the whole trace — a crude
    whole-trace measure of the paper's [f(n)/g(n)] spatial-locality ratio. *)

val block_run_lengths : Trace.t -> int array
(** Histogram of maximal same-block run lengths: [result.(l)] counts runs of
    exactly [l] consecutive accesses to one block (index 0 unused).  Long
    runs are the purest form of exploitable spatial locality: a GC cache
    pays once per run. *)

val mean_block_run_length : Trace.t -> float
(** Average run length — [1.0] means no consecutive block reuse at all. *)
