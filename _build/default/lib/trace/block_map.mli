(** Partition of the item universe into blocks.

    The Granularity-Change model (Definition 1 of the paper) partitions data
    items into disjoint blocks of at most [B] items.  On a miss, a cache may
    load any subset of the missed item's block for unit cost.

    Two representations are supported:
    - {e uniform}: item [i] belongs to block [i / B]; the universe is
      unbounded.  This is the common case (cache lines within DRAM rows,
      pages within erase blocks, ...).
    - {e explicit}: an arbitrary disjoint partition given block by block,
      used e.g. by the NP-completeness reduction, whose "active sets" have
      heterogeneous sizes. *)

type t

val uniform : block_size:int -> t
(** [uniform ~block_size:b] maps item [i] to block [i / b].  [b >= 1]. *)

val singleton : t
(** [singleton] is [uniform ~block_size:1]: the traditional caching model,
    where every item is its own block. *)

val of_blocks : int array list -> t
(** [of_blocks bs] builds an explicit partition where the [j]-th array lists
    the items of block [j].  Raises [Invalid_argument] if any item appears
    twice or any block is empty.  Items not listed are implicitly assigned
    fresh singleton blocks when queried. *)

val block_size : t -> int
(** Upper bound [B] on the number of items per block. *)

val block_of : t -> int -> int
(** [block_of t item] is the id of the block containing [item]. *)

val items_of : t -> int -> int array
(** [items_of t block] lists the items of [block] in ascending order.
    For uniform maps this is the contiguous range of [B] items. *)

val same_block : t -> int -> int -> bool
(** Whether two items share a block. *)

val is_uniform : t -> bool

val pp : Format.formatter -> t -> unit
