type entry = {
  name : string;
  description : string;
  trace : Trace.t;
}

let standard ?(seed = 1) ?(n = 20_000) ?(universe = 16_384) ?(block_size = 16)
    () =
  let r = Rng.create seed in
  let sub () = Rng.split r in
  [
    {
      name = "sequential";
      description = "cyclic scan: maximal spatial locality, zero reuse";
      trace = Generators.sequential ~n ~universe:(universe / 8) ~block_size;
    };
    {
      name = "uniform";
      description = "independent uniform requests: neither locality";
      trace = Generators.uniform_random (sub ()) ~n ~universe:(universe / 8) ~block_size;
    };
    {
      name = "zipf";
      description = "skewed item popularity: temporal locality only";
      trace =
        Generators.zipf_items (sub ()) ~n ~universe:(universe / 8) ~block_size
          ~alpha:1.0;
    };
    {
      name = "zipf-blocks";
      description = "skewed block popularity with in-block walks";
      trace =
        Generators.zipf_blocks (sub ()) ~n
          ~blocks:(universe / block_size / 8)
          ~block_size ~alpha:0.8 ~within:`Sequential;
    };
    {
      name = "spatial-mix";
      description = "60% same-block continuation: both localities";
      trace =
        Generators.spatial_mix (sub ()) ~n ~universe:(universe / 4) ~block_size
          ~p_spatial:0.6;
    };
    {
      name = "pointer-chase";
      description = "permutation cycle: perfect reuse, no spatial structure";
      trace =
        Generators.pointer_chase (sub ()) ~n ~universe:(universe / 16)
          ~block_size;
    };
    {
      name = "phases";
      description = "working set grows 8x then shrinks: phase changes";
      trace =
        Generators.working_set_phases (sub ()) ~block_size
          ~phases:
            [ (universe / 64, n / 4); (universe / 8, n / 2); (universe / 128, n / 4) ];
    };
    {
      name = "markov";
      description = "bursty streaming/random alternation";
      trace =
        Generators.markov (sub ()) ~n ~universe ~block_size ~p_switch:0.01;
    };
  ]

let find name entries =
  match List.find_opt (fun e -> e.name = name) entries with
  | Some e -> e.trace
  | None -> raise Not_found

let names entries = List.map (fun e -> e.name) entries
