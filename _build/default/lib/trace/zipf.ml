type t = {
  n : int;
  cdf : float array;  (* cdf.(r) = P(rank <= r); cdf.(n-1) = 1.0 *)
}

let create ~n ~alpha =
  if n < 1 then invalid_arg "Zipf.create: n < 1";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) alpha);
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  cdf.(n - 1) <- 1.0;
  { n; cdf }

let n t = t.n

let probability t r =
  if r < 0 || r >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if r = 0 then t.cdf.(0) else t.cdf.(r) -. t.cdf.(r - 1)

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo
