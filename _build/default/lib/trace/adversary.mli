(** Adversarial trace constructions from the paper's lower-bound proofs.

    Each construction follows the corresponding proof: it repeatedly (step 2)
    streams fresh data past the online cache and then (step 4) requests items
    the online cache chose not to keep, while a clairvoyant cache of size [h]
    could have kept them.  The constructions are {e adaptive}: they query the
    online policy (through {!ORACLE}) for what it currently caches, exactly
    as the adversary in the proofs simulates the deterministic policy.

    Alongside the trace, each construction returns the cost of the explicit
    offline schedule the proof describes ([opt_misses]).  That schedule is
    feasible for a cache of size [h] by construction (see
    [Gc_offline.Schedule] for independent certification), so
    [online_misses / opt_misses] is a certified lower estimate of the
    policy's competitive ratio. *)

module type ORACLE = sig
  type t

  val access : t -> int -> unit
  (** Feed one request to the online policy. *)

  val mem : t -> int -> bool
  (** Is the item currently cached by the online policy? *)
end

type construction = {
  trace : Trace.t;  (** Full trace, warmup prefix included. *)
  warmup_len : int;  (** Length of the warmup prefix. *)
  online_misses : int;  (** Measured online misses, excluding warmup. *)
  opt_misses : int;  (** Offline schedule cost, excluding warmup. *)
  warmup_online_misses : int;
  warmup_opt_misses : int;
  bound : float;  (** The theorem's competitive-ratio formula. *)
  info : (string * float) list;  (** Construction-specific extras. *)
}

val measured_ratio : construction -> float
(** [online_misses / opt_misses] (infinite if [opt_misses = 0]). *)

module Make (O : ORACLE) : sig
  val sleator_tarjan : O.t -> k:int -> h:int -> cycles:int -> construction
  (** Classic paging lower bound (every item its own block).  Bound:
      [k / (k - h + 1)].  Requires [k >= h >= 2]. *)

  val item_cache :
    O.t -> k:int -> h:int -> block_size:int -> cycles:int -> construction
  (** Theorem 2 trace.  Streams whole fresh blocks in step 2 so the
      clairvoyant cache pays once per block.  Bound:
      [B (k - B + 1) / (k - h + 1)].  Requires [k >= h > block_size]. *)

  val block_cache :
    O.t -> k:int -> h:int -> block_size:int -> cycles:int -> construction
  (** Theorem 3 trace.  Touches one item per fresh block so whole-block
      caching wastes [B - 1] of every [B] units.  Bound:
      [k / (k - B (h - 1))] (infinite when [k <= B (h - 1)]).
      Requires [ceil(k/B) >= h >= 2]. *)

  val general_a :
    O.t -> k:int -> h:int -> block_size:int -> cycles:int -> construction
  (** Theorem 4 trace.  In step 2, keeps requesting not-yet-cached items of
      each fresh block until the policy holds the whole block (measuring the
      policy's effective [a] parameter, reported as ["a"] in [info]).
      Bound: [(a (k - h + 1) + B (h - a)) / (k - h + 1)]. *)

  val spatial_stress :
    O.t ->
    h:int ->
    block_size:int ->
    t_load:int ->
    spacing:int ->
    cycles:int ->
    construction
  (** The Figure-5 spatial pattern (block "A"): per cycle, [t_load] items of
      one fresh block are requested, consecutive requests separated by
      [spacing] fresh single-use filler blocks.  The offline schedule loads
      all [t_load] items on the first miss (triangle space usage) and hits
      the remaining [t_load - 1]; it needs [h >= t_load + 1].  [bound] is
      the per-cycle ratio of this construction itself. *)

  val spatial_stress_pipelined :
    O.t ->
    h:int ->
    block_size:int ->
    t_load:int ->
    width:int ->
    rotations:int ->
    construction
  (** The dense version of the Figure-5 spatial pattern, realizing the
      Theorem-6 optimum: [width] blocks are active at once and accessed in
      round-robin rotation, one item per visit; after [t_load] visits a
      block retires and a fresh one takes its slot (initial blocks use
      shorter targets so retirements stagger).  Every access belongs to some
      block's pattern — there are no wasted fillers — so the measured ratio
      approaches [t_load] (the offline cache pays once per block).  Requires
      [width > online block-layer capacity] for the online policy to miss
      everything and [h >= width (t_load + 1) / 2 + 1] for the offline
      triangle usage to fit. *)

  val temporal_stress :
    O.t -> h:int -> block_size:int -> spacing:int -> cycles:int -> construction
  (** The Figure-5 temporal pattern (item "B1"): [h - 1] hot items, each
      re-request separated by at least [spacing] distinct filler items, with
      filler blocks never reused.  The offline schedule pins the hot items. *)
end
