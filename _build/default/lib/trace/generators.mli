(** Synthetic workload generators.

    Every generator is deterministic given its {!Rng.t}.  Unless stated
    otherwise, generators use a uniform block map of the given
    [block_size], so item [i] lives in block [i / block_size]. *)

val sequential : n:int -> universe:int -> block_size:int -> Trace.t
(** Cyclic sequential scan [0, 1, ..., universe-1, 0, 1, ...] of length [n].
    Maximum spatial locality: whole blocks are consumed in order. *)

val strided : n:int -> stride:int -> universe:int -> block_size:int -> Trace.t
(** Strided scan [0, s, 2s, ...] modulo [universe].  With [stride >=
    block_size] this defeats spatial locality entirely. *)

val uniform_random : Rng.t -> n:int -> universe:int -> block_size:int -> Trace.t
(** Independent uniform requests. *)

val zipf_items :
  Rng.t -> n:int -> universe:int -> block_size:int -> alpha:float -> Trace.t
(** Zipf-distributed requests over items; ranks are shuffled onto item ids so
    popularity is not correlated with block structure. *)

val zipf_blocks :
  Rng.t ->
  n:int ->
  blocks:int ->
  block_size:int ->
  alpha:float ->
  within:[ `Sequential | `Uniform | `First ] ->
  Trace.t
(** Zipf-distributed requests over {e blocks}; the item within the chosen
    block is picked per [within].  [`First] touches only one item per block
    (worst case for Block Caches); [`Sequential] walks the block (best
    case). *)

val spatial_mix :
  Rng.t ->
  n:int ->
  universe:int ->
  block_size:int ->
  p_spatial:float ->
  Trace.t
(** Tunable spatial locality: with probability [p_spatial] the next request
    stays in the current block (uniform over its items), otherwise it jumps
    to a uniformly random item.  [p_spatial = 0] gives no spatial structure;
    values near 1 give near-maximal f/g ratio. *)

val working_set_phases :
  Rng.t ->
  block_size:int ->
  phases:(int * int) list ->
  Trace.t
(** [working_set_phases rng ~block_size ~phases] where each phase is
    [(working_set_items, accesses)]: requests are uniform over a fresh
    contiguous working set for the duration of each phase.  Models phase-
    change behaviour of real programs. *)

val block_scan : n_blocks:int -> repeats:int -> block_size:int -> Trace.t
(** Access every item of blocks [0..n_blocks-1] in order, [repeats] times
    per block (the paper's Figure 2 uses this shape). *)

val interleave : Trace.t -> Trace.t -> Trace.t
(** Round-robin interleaving of two traces with the same block size. *)

val concat_phases : Trace.t list -> Trace.t
(** Concatenate traces (same block size required). *)

val pointer_chase :
  Rng.t -> n:int -> universe:int -> block_size:int -> Trace.t
(** A random permutation cycle walked repeatedly: high temporal regularity,
    no spatial locality.  Classic latency-bound workload. *)

val markov :
  Rng.t ->
  n:int ->
  universe:int ->
  block_size:int ->
  p_switch:float ->
  Trace.t
(** A two-state Markov-modulated workload: a {e streaming} state emits
    sequential same-block runs, a {e random} state emits uniform requests;
    the state flips with probability [p_switch] per access.  Produces the
    bursty mixture of localities real programs show, without hand-placing
    phases. *)
