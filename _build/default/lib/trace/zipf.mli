(** Zipfian sampling.

    Real access traces are heavily skewed; Zipf-distributed request streams
    are the standard synthetic stand-in.  [P(rank r) ∝ 1 / r^alpha]. *)

type t

val create : n:int -> alpha:float -> t
(** [create ~n ~alpha] prepares a sampler over ranks [\[0, n)].  [alpha = 0]
    is uniform; [alpha = 1] is classic Zipf.  O(n) setup, O(log n) per
    sample. *)

val sample : t -> Rng.t -> int
(** Draw one rank. *)

val n : t -> int

val probability : t -> int -> float
(** [probability t r] is the probability of rank [r]. *)
