let with_block_size trace ~block_size =
  Trace.make (Block_map.uniform ~block_size)
    (Array.copy trace.Trace.requests)

let remap_items trace ~mapping =
  Trace.make trace.Trace.blocks (Array.map mapping trace.Trace.requests)

let shuffle_layout rng trace =
  let blocks = trace.Trace.blocks in
  if not (Block_map.is_uniform blocks) then
    invalid_arg "Transform.shuffle_layout: uniform block maps only";
  let bsize = Block_map.block_size blocks in
  let universe = Trace.universe trace in
  (* Scatter the used items across fresh block frames uniformly. *)
  let slots = Array.init (Array.length universe) (fun idx -> idx) in
  Rng.shuffle rng slots;
  let mapping = Hashtbl.create (Array.length universe) in
  Array.iteri
    (fun idx item ->
      (* Spread consecutive slots over distinct blocks: slot s maps to
         block (s mod frames), offset (s / frames), so formerly same-block
         items land apart. *)
      let frames = (Array.length universe + bsize - 1) / bsize in
      let s = slots.(idx) in
      Hashtbl.add mapping item (((s mod frames) * bsize) + (s / frames)))
    universe;
  remap_items trace ~mapping:(Hashtbl.find mapping)

let pack_blocks trace =
  let blocks = trace.Trace.blocks in
  if not (Block_map.is_uniform blocks) then
    invalid_arg "Transform.pack_blocks: uniform block maps only";
  let mapping = Hashtbl.create 256 in
  let next = ref 0 in
  Trace.iter
    (fun item ->
      if not (Hashtbl.mem mapping item) then begin
        Hashtbl.add mapping item !next;
        incr next
      end)
    trace;
  remap_items trace ~mapping:(Hashtbl.find mapping)

let truncate trace ~n =
  Trace.sub trace ~pos:0 ~len:(min n (Trace.length trace))

let sample_strided trace ~keep_one_in =
  if keep_one_in < 1 then
    invalid_arg "Transform.sample_strided: keep_one_in must be >= 1";
  let n = Trace.length trace in
  let kept = (n + keep_one_in - 1) / keep_one_in in
  Trace.make trace.Trace.blocks
    (Array.init kept (fun idx -> Trace.get trace (idx * keep_one_in)))
