(** Adversarial constructions instantiated against {!Policy.t} instances.

    [Attack.item_cache policy ~k ~h ~block_size ~cycles] etc. build the
    lower-bound traces of Theorems 2-4 adaptively against the given policy;
    see {!Gc_trace.Adversary} for the construction details. *)

include Gc_trace.Adversary.Make (Policy.Oracle)
