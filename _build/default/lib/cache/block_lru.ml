module P = struct
  type t = {
    k : int;
    blocks : Gc_trace.Block_map.t;
    recency : Lru_core.t;  (* keys are block ids *)
    resident : (int, int array) Hashtbl.t;  (* block -> its loaded items *)
    cached_items : (int, unit) Hashtbl.t;
    mutable occ : int;
  }

  let name = "block-lru"
  let k t = t.k
  let mem t item = Hashtbl.mem t.cached_items item
  let occupancy t = t.occ

  let evict_lru_block t =
    match Lru_core.pop_lru t.recency with
    | None -> assert false
    | Some blk ->
        let items = Hashtbl.find t.resident blk in
        Hashtbl.remove t.resident blk;
        Array.iter (fun x -> Hashtbl.remove t.cached_items x) items;
        t.occ <- t.occ - Array.length items;
        Array.to_list items

  let access t item =
    let blk = Gc_trace.Block_map.block_of t.blocks item in
    if Hashtbl.mem t.resident blk then begin
      Lru_core.touch t.recency blk;
      Policy.Hit { evicted = [] }
    end
    else begin
      let incoming = Gc_trace.Block_map.items_of t.blocks blk in
      let evicted = ref [] in
      while t.occ + Array.length incoming > t.k do
        evicted := evict_lru_block t @ !evicted
      done;
      Lru_core.touch t.recency blk;
      Hashtbl.add t.resident blk incoming;
      Array.iter (fun x -> Hashtbl.replace t.cached_items x ()) incoming;
      t.occ <- t.occ + Array.length incoming;
      Policy.Miss { loaded = Array.to_list incoming; evicted = !evicted }
    end
end

let create ~k ~blocks =
  let b = Gc_trace.Block_map.block_size blocks in
  if k < b then invalid_arg "Block_lru.create: k smaller than block size";
  Policy.Instance
    ( (module P),
      {
        P.k;
        blocks;
        recency = Lru_core.create ();
        resident = Hashtbl.create 256;
        cached_items = Hashtbl.create 1024;
        occ = 0;
      } )
