module P = struct
  type t = {
    k : int;
    small_cap : int;
    small : Lru_core.t;  (* FIFO: insert_if_absent, no touch *)
    main : Lru_core.t;
    ghost : Lru_core.t;
    freq : (int, int) Hashtbl.t;  (* capped access count per cached item *)
  }

  let name = "s3-fifo"
  let k t = t.k
  let mem t x = Lru_core.mem t.small x || Lru_core.mem t.main x
  let occupancy t = Lru_core.size t.small + Lru_core.size t.main

  let bump t x =
    let c = Option.value ~default:0 (Hashtbl.find_opt t.freq x) in
    Hashtbl.replace t.freq x (min 3 (c + 1))

  (* Evict one item, honouring lazy promotion/demotion; returns the item
     that actually left the cache. *)
  let rec evict_one t =
    if Lru_core.size t.small >= t.small_cap then begin
      match Lru_core.pop_lru t.small with
      | None -> assert false
      | Some v ->
          if Option.value ~default:0 (Hashtbl.find_opt t.freq v) > 0 then begin
            (* Referenced while probationary: promote to main. *)
            Hashtbl.replace t.freq v 0;
            Lru_core.insert_if_absent t.main v;
            evict_one t
          end
          else begin
            Hashtbl.remove t.freq v;
            Lru_core.touch t.ghost v;
            while Lru_core.size t.ghost > t.k do
              ignore (Lru_core.pop_lru t.ghost)
            done;
            v
          end
    end
    else begin
      match Lru_core.pop_lru t.main with
      | None -> (
          (* Main empty: fall back to small unconditionally. *)
          match Lru_core.pop_lru t.small with
          | Some v ->
              Hashtbl.remove t.freq v;
              v
          | None -> assert false)
      | Some v ->
          let c = Option.value ~default:0 (Hashtbl.find_opt t.freq v) in
          if c > 0 then begin
            (* Second chance, decayed. *)
            Hashtbl.replace t.freq v (c - 1);
            Lru_core.insert_if_absent t.main v;
            (* insert_if_absent skips existing keys; force reinsertion. *)
            Lru_core.remove t.main v;
            Lru_core.touch t.main v;
            evict_one t
          end
          else begin
            Hashtbl.remove t.freq v;
            v
          end
    end

  let access t x =
    if mem t x then begin
      bump t x;
      Policy.Hit { evicted = [] }
    end
    else begin
      let evicted = ref [] in
      if occupancy t >= t.k then evicted := [ evict_one t ];
      if Lru_core.mem t.ghost x then begin
        (* Recently rejected: skip probation. *)
        Lru_core.remove t.ghost x;
        Lru_core.insert_if_absent t.main x
      end
      else Lru_core.insert_if_absent t.small x;
      Hashtbl.replace t.freq x 0;
      Policy.Miss { loaded = [ x ]; evicted = !evicted }
    end
end

let create ?(small_fraction = 0.1) ~k () =
  if k < 2 then invalid_arg "S3_fifo.create: k must be >= 2";
  if small_fraction <= 0. || small_fraction >= 1. then
    invalid_arg "S3_fifo.create: small_fraction must be in (0, 1)";
  let small_cap = max 1 (int_of_float (small_fraction *. float_of_int k)) in
  Policy.Instance
    ( (module P),
      {
        P.k;
        small_cap;
        small = Lru_core.create ();
        main = Lru_core.create ();
        ghost = Lru_core.create ();
        freq = Hashtbl.create 256;
      } )
