(** The online-policy interface for the Granularity-Change Caching Problem.

    A policy owns its cache state.  On every request it reports whether the
    request hit, and on a miss, which items it loaded (any subset of the
    requested item's block containing the item — the defining freedom of GC
    caching, Definition 1) and which items it evicted.

    Space accounting is the policy's job because layered designs such as
    IBLP may deliberately hold duplicate copies of an item; the simulator
    checks the invariant [occupancy <= k] rather than recomputing space
    itself. *)

type outcome =
  | Hit of { evicted : int list }
      (** Hits are free, but a layered policy may still rearrange itself on
          a hit (e.g. IBLP promotes a block-layer hit into its item layer)
          and push items out of the cache; [evicted] reports those. *)
  | Miss of { loaded : int list; evicted : int list }
      (** [loaded] are the items newly brought into the cache (including the
          requested one); [evicted] are items that left the cache entirely.
          A miss costs one block load regardless of [|loaded|]. *)

module type S = sig
  type t

  val name : string
  val k : t -> int
  (** Total cache capacity in items. *)

  val mem : t -> int -> bool
  (** Is the item currently held (in any internal layer)? *)

  val occupancy : t -> int
  (** Items of space currently used, counting duplicates. *)

  val access : t -> int -> outcome
end

type t = Instance : (module S with type t = 'a) * 'a -> t
(** A policy packaged with its state. *)

val name : t -> string
val k : t -> int
val mem : t -> int -> bool
val occupancy : t -> int
val access : t -> int -> outcome

(** Adapter matching {!Gc_trace.Adversary.ORACLE}. *)
module Oracle : sig
  type nonrec t = t

  val access : t -> int -> unit
  val mem : t -> int -> bool
end
