(** LRU-K (O'Neil, O'Neil & Weikum 1993), item granularity.

    Evicts the item whose K-th most recent reference is oldest (items with
    fewer than K references are considered infinitely old and go first,
    LRU among themselves).  K = 1 degenerates to plain LRU; K = 2 is the
    classic scan-resistant configuration.  Another spatially blind Item
    Cache for the Theorem-2 experiments. *)

val create : ?history:int -> k:int -> depth:int -> unit -> Policy.t
(** [depth] is the K of LRU-K ([>= 1]).  [history] bounds the reference
    history retained for evicted items (default [k]); re-references within
    the window keep their counts. *)
