(** Item-Block Layered Partitioning — the paper's policy (Section 5).

    The cache space [k = i + b] is split into two layers (Figure 4):
    - the {e item layer} (size [i]) serves every access, loads only the
      requested item, and evicts with LRU over items;
    - the {e block layer} (size [b]) serves only accesses that miss in the
      item layer, and loads/evicts whole blocks with LRU over blocks.

    Two deliberate subtleties from the paper:
    - an access that hits in the item layer does {e not} reorder the block
      layer's LRU list (otherwise blocks with a few hot items would pollute
      the block layer);
    - the block layer is neither inclusive nor exclusive of the item layer:
      an item may occupy space in both layers at once.

    Theorem 7 bounds its competitive ratio; [Gc_bounds.Iblp_upper] has the
    closed forms and [Gc_bounds.Partitioning] the optimal [i]/[b] split. *)

val create :
  ?reorder_on_item_hit:bool ->
  i:int ->
  b:int ->
  blocks:Gc_trace.Block_map.t ->
  unit ->
  Policy.t
(** [i >= 0] item-layer slots, [b >= 0] block-layer slots (the block layer
    holds [b / B] whole blocks).  [i + b >= 1].  If [b < B] the block layer
    is inert and the policy degenerates to item LRU of size [i].

    [reorder_on_item_hit] (default [false]) is an ablation switch: when
    true, item-layer hits also refresh the block layer's recency — the
    design the paper rejects because hot items then pin their mostly-unused
    blocks, shrinking the block layer's effective space (see the [ablation]
    bench section). *)
