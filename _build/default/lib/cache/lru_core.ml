type node = {
  key : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* MRU *)
  mutable tail : node option;  (* LRU *)
}

let create () = { table = Hashtbl.create 64; head = None; tail = None }

let size t = Hashtbl.length t.table

let mem t key = Hashtbl.mem t.table key

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      unlink t node;
      push_front t node
  | None ->
      let node = { key; prev = None; next = None } in
      Hashtbl.add t.table key node;
      push_front t node

let insert_if_absent t key =
  if not (Hashtbl.mem t.table key) then begin
    let node = { key; prev = None; next = None } in
    Hashtbl.add t.table key node;
    push_front t node
  end

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key
  | None -> ()

let lru t = Option.map (fun n -> n.key) t.tail

let mru t = Option.map (fun n -> n.key) t.head

let pop_lru t =
  match t.tail with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      Some node.key

let iter_mru_to_lru f t =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.key;
        go n.next
  in
  go t.head

let to_list_mru_first t =
  let acc = ref [] in
  iter_mru_to_lru (fun k -> acc := k :: !acc) t;
  List.rev !acc
