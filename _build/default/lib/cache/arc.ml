(* Standard ARC: T1 (recent), T2 (frequent), with ghost lists B1, B2 of
   evicted keys.  |T1| + |T2| <= k; |T1| + |B1| <= k; total directory
   |T1|+|T2|+|B1|+|B2| <= 2k.  The target size p of T1 adapts on ghost
   hits.  Follows the ARC paper's REPLACE/Case I-IV structure. *)

module P = struct
  type t = {
    k : int;
    t1 : Lru_core.t;
    t2 : Lru_core.t;
    b1 : Lru_core.t;  (* ghosts: keys only, no data *)
    b2 : Lru_core.t;
    mutable p : int;  (* target size of t1, in [0, k] *)
  }

  let name = "arc"
  let k t = t.k
  let mem t x = Lru_core.mem t.t1 x || Lru_core.mem t.t2 x
  let occupancy t = Lru_core.size t.t1 + Lru_core.size t.t2

  (* Evict from T1 or T2 per the adaptation target; the victim's key moves
     to the corresponding ghost list.  [prefer_t1] breaks the tie ARC uses
     in case II (hit in B2). *)
  let replace t ~in_b2 =
    let t1_size = Lru_core.size t.t1 in
    let from_t1 =
      t1_size >= 1 && (t1_size > t.p || (in_b2 && t1_size = t.p))
    in
    if from_t1 then begin
      match Lru_core.pop_lru t.t1 with
      | Some v ->
          Lru_core.touch t.b1 v;
          v
      | None -> assert false
    end
    else begin
      match Lru_core.pop_lru t.t2 with
      | Some v ->
          Lru_core.touch t.b2 v;
          v
      | None -> (
          (* T2 empty: fall back to T1. *)
          match Lru_core.pop_lru t.t1 with
          | Some v ->
              Lru_core.touch t.b1 v;
              v
          | None -> assert false)
    end

  let access t x =
    if Lru_core.mem t.t1 x then begin
      (* Case I: hit in T1 -> promote to T2. *)
      Lru_core.remove t.t1 x;
      Lru_core.touch t.t2 x;
      Policy.Hit { evicted = [] }
    end
    else if Lru_core.mem t.t2 x then begin
      Lru_core.touch t.t2 x;
      Policy.Hit { evicted = [] }
    end
    else begin
      let evicted = ref [] in
      if Lru_core.mem t.b1 x then begin
        (* Case II: ghost hit in B1 -> grow T1's target. *)
        let delta =
          max 1 (Lru_core.size t.b2 / max 1 (Lru_core.size t.b1))
        in
        t.p <- min t.k (t.p + delta);
        if occupancy t >= t.k then evicted := [ replace t ~in_b2:false ];
        Lru_core.remove t.b1 x;
        Lru_core.touch t.t2 x
      end
      else if Lru_core.mem t.b2 x then begin
        (* Case III: ghost hit in B2 -> grow T2's target. *)
        let delta =
          max 1 (Lru_core.size t.b1 / max 1 (Lru_core.size t.b2))
        in
        t.p <- max 0 (t.p - delta);
        if occupancy t >= t.k then evicted := [ replace t ~in_b2:true ];
        Lru_core.remove t.b2 x;
        Lru_core.touch t.t2 x
      end
      else begin
        (* Case IV: cold miss. *)
        let l1 = Lru_core.size t.t1 + Lru_core.size t.b1 in
        if l1 = t.k then begin
          if Lru_core.size t.t1 < t.k then begin
            ignore (Lru_core.pop_lru t.b1);
            evicted := [ replace t ~in_b2:false ]
          end
          else begin
            (* B1 empty, T1 full: evict T1's LRU outright. *)
            match Lru_core.pop_lru t.t1 with
            | Some v -> evicted := [ v ]
            | None -> assert false
          end
        end
        else begin
          let total =
            l1 + Lru_core.size t.t2 + Lru_core.size t.b2
          in
          if total >= t.k then begin
            if total = 2 * t.k then ignore (Lru_core.pop_lru t.b2);
            if occupancy t >= t.k then
              evicted := [ replace t ~in_b2:false ]
          end
        end;
        Lru_core.touch t.t1 x
      end;
      Policy.Miss { loaded = [ x ]; evicted = !evicted }
    end
end

let create ~k =
  if k < 2 then invalid_arg "Arc.create: k must be >= 2";
  Policy.Instance
    ( (module P),
      {
        P.k;
        t1 = Lru_core.create ();
        t2 = Lru_core.create ();
        b1 = Lru_core.create ();
        b2 = Lru_core.create ();
        p = 0;
      } )
