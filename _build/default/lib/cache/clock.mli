(** Item-granularity CLOCK (second-chance): the standard low-overhead LRU
    approximation used by real page caches. *)

val create : k:int -> Policy.t
