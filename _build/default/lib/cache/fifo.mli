(** Item-granularity FIFO: evicts in insertion order, ignoring re-use. *)

val create : k:int -> Policy.t
