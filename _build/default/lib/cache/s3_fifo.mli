(** S3-FIFO (Yang et al. 2023), item granularity.

    Three FIFO queues: a small probationary queue absorbs one-hit wonders,
    a main queue holds promoted items (lazy promotion: re-referenced small-
    queue items move to main on eviction), and a ghost queue remembers
    recently rejected keys so their return skips probation.  A modern,
    simple, scan-resistant baseline — and, like every Item Cache, subject
    to Theorem 2 unchanged. *)

val create : ?small_fraction:float -> k:int -> unit -> Policy.t
(** [small_fraction] of [k] goes to the small queue (default 0.1,
    at least one slot).  [k >= 2]. *)
