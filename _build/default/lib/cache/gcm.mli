(** Granularity-Change Marking (paper Section 6.1).

    A marking algorithm adapted to the GC model: on a miss the whole
    requested block is brought in, but only the requested item is marked.
    Spatially-loaded items therefore never displace items with demonstrated
    temporal locality — they fill free space and replace unmarked items
    only.  When fewer unmarked slots than block items are available, the
    unmarked cache contents are replaced by randomly selected items of the
    accessed block (the paper's special case). *)

val create :
  ?load_limit:int ->
  k:int ->
  blocks:Gc_trace.Block_map.t ->
  rng:Gc_trace.Rng.t ->
  unit ->
  Policy.t
(** [load_limit] caps how many items (including the requested one) a miss
    may bring in; default is the block size.  Section 6.1 notes "there may
    be value in a policy that loads some but not all of the items in the
    accessed block" — this parameter makes that family concrete (the
    [randomized] bench sweeps it). *)
