(** The [a]-parameter policy family analyzed in Theorem 4.

    The parameter [a] is "the number of distinct consecutive accesses to a
    block before the policy loads the entire block".  This policy makes the
    parameter explicit: item-granularity LRU eviction, item-granularity
    loads until a block has seen [a] distinct consecutive accesses, at
    which point the whole block is loaded.

    Section 4.4's conclusion — that only the extremes [a = 1] (block
    loading) and [a = B] (item loading) are worth using — is checked
    empirically by the [empirical_thm4] bench over this family. *)

val create : k:int -> a:int -> blocks:Gc_trace.Block_map.t -> Policy.t
(** [a >= 1].  [a = 1] loads whole blocks on every miss (but evicts items
    individually, unlike {!Block_lru}); large [a] degenerates to item LRU. *)
