module Strategy = struct
  type t = { set : Index_set.t; rng : Gc_trace.Rng.t }
  type config = Gc_trace.Rng.t

  let name = "random"
  let create rng = { set = Index_set.create (); rng }
  let mem t = Index_set.mem t.set
  let size t = Index_set.size t.set
  let on_hit _ _ = ()
  let insert t x = Index_set.add t.set x

  let pop_victim t =
    let v = Index_set.random t.set t.rng in
    Index_set.remove t.set v;
    v
end

module M = Item_policy.Make (Strategy)

let create ~k ~rng = M.create ~k rng
