(** Flush-When-Full: evict everything when the cache fills.

    The classic strawman from the paging literature — k-competitive like
    LRU/FIFO, and one of the policies Albers, Favrholdt and Giel analyze in
    the locality-of-reference model the paper's Section 7 extends.  Included
    as a baseline for the fault-rate experiments. *)

val create : k:int -> Policy.t
