module P = struct
  type t = {
    i : int;
    b : int;
    cap_blocks : int;
    blocks : Gc_trace.Block_map.t;
    item_layer : Lru_core.t;  (* keys are items *)
    block_layer : Lru_core.t;  (* keys are block ids *)
    resident : (int, int array) Hashtbl.t;  (* block -> its loaded items *)
    mutable block_occ : int;
    (* Ablation switch: the paper argues item-layer hits must NOT refresh
       the block layer's recency; setting this true measures why. *)
    reorder_on_item_hit : bool;
  }

  let name = "iblp"
  let k t = t.i + t.b

  let in_block_layer t item =
    Hashtbl.mem t.resident (Gc_trace.Block_map.block_of t.blocks item)

  let mem t item = Lru_core.mem t.item_layer item || in_block_layer t item

  let occupancy t = Lru_core.size t.item_layer + t.block_occ

  (* Evict the LRU block; returns the items that left the cache entirely
     (i.e. are not duplicated in the item layer). *)
  let evict_lru_block t =
    match Lru_core.pop_lru t.block_layer with
    | None -> assert false
    | Some blk ->
        let items = Hashtbl.find t.resident blk in
        Hashtbl.remove t.resident blk;
        t.block_occ <- t.block_occ - Array.length items;
        Array.fold_left
          (fun acc x -> if Lru_core.mem t.item_layer x then acc else x :: acc)
          [] items

  (* Insert into the item layer, evicting its LRU if full; returns the
     items that left the cache entirely. *)
  let promote t item =
    if t.i = 0 then []
    else begin
      let gone = ref [] in
      while Lru_core.size t.item_layer >= t.i do
        match Lru_core.pop_lru t.item_layer with
        | None -> assert false
        | Some v -> if not (in_block_layer t v) then gone := v :: !gone
      done;
      Lru_core.touch t.item_layer item;
      !gone
    end

  let access t item =
    if Lru_core.mem t.item_layer item then begin
      (* Item-layer hit: refresh item recency only; the block layer's order
         must not be disturbed by temporal locality (unless the ablation
         switch says otherwise). *)
      Lru_core.touch t.item_layer item;
      if t.reorder_on_item_hit then begin
        let blk = Gc_trace.Block_map.block_of t.blocks item in
        if Hashtbl.mem t.resident blk then Lru_core.touch t.block_layer blk
      end;
      Policy.Hit { evicted = [] }
    end
    else begin
      let blk = Gc_trace.Block_map.block_of t.blocks item in
      if Hashtbl.mem t.resident blk then begin
        (* Block-layer hit: the block served the access, so it is
           re-referenced; the item is also promoted into the item layer.
           Items displaced from the item layer may still be covered by a
           resident block, in which case they stay cached (no space change:
           the duplicate copy is dropped). *)
        Lru_core.touch t.block_layer blk;
        let gone = promote t item in
        Policy.Hit { evicted = gone }
      end
      else begin
        let evicted = ref [] in
        let loaded = ref [] in
        (* Block layer: bring in the whole block (if the layer exists). *)
        if t.cap_blocks > 0 then begin
          while Lru_core.size t.block_layer >= t.cap_blocks do
            evicted := evict_lru_block t @ !evicted
          done;
          let incoming = Gc_trace.Block_map.items_of t.blocks blk in
          Lru_core.touch t.block_layer blk;
          Hashtbl.add t.resident blk incoming;
          t.block_occ <- t.block_occ + Array.length incoming;
          (* Newly cached = block items not duplicated in the item layer. *)
          Array.iter
            (fun x ->
              if not (Lru_core.mem t.item_layer x) then loaded := x :: !loaded)
            incoming
        end;
        (* Item layer: load the requested item. *)
        let gone = promote t item in
        evicted := gone @ !evicted;
        if t.cap_blocks = 0 then loaded := [ item ];
        (* Displaced item-layer entries may have been double-counted as
           evicted if the block layer still holds them; [promote] already
           filters that.  Conversely an item evicted from the block layer
           then re-loaded cannot happen within one access since the loaded
           block is fresh. *)
        Policy.Miss { loaded = !loaded; evicted = !evicted }
      end
    end
end

let create ?(reorder_on_item_hit = false) ~i ~b ~blocks () =
  if i < 0 || b < 0 || i + b < 1 then
    invalid_arg "Iblp.create: need i, b >= 0 and i + b >= 1";
  let bsize = Gc_trace.Block_map.block_size blocks in
  let cap_blocks = b / bsize in
  if i = 0 && cap_blocks = 0 then
    invalid_arg "Iblp.create: cache cannot hold anything (i = 0, b < B)";
  Policy.Instance
    ( (module P),
      {
        P.i;
        b;
        cap_blocks;
        blocks;
        item_layer = Lru_core.create ();
        block_layer = Lru_core.create ();
        resident = Hashtbl.create 256;
        block_occ = 0;
        reorder_on_item_hit;
      } )

