(** Windowed time series of a simulation — miss rate over time.

    Useful for phase-change analysis (e.g. watching the adaptive IBLP
    re-partition) and for plotting. *)

type point = {
  start : int;  (** First access index of the window. *)
  accesses : int;
  misses : int;
  spatial_hits : int;
}

val run :
  ?check:bool ->
  window:int ->
  Policy.t ->
  Gc_trace.Trace.t ->
  point list * Metrics.t
(** Simulate the trace, recording one point per [window] accesses (the last
    window may be shorter).  Returns the series and the overall metrics. *)

val miss_rates : point list -> (int * float) list
(** [(start, miss rate)] per window. *)
