type point = {
  start : int;
  accesses : int;
  misses : int;
  spatial_hits : int;
}

let run ?check ~window policy trace =
  if window < 1 then invalid_arg "Timeline.run: window must be >= 1";
  let points = ref [] in
  let win_start = ref 0 in
  let win_misses = ref 0 in
  let win_spatial = ref 0 in
  let flush pos =
    if pos > !win_start then
      points :=
        {
          start = !win_start;
          accesses = pos - !win_start;
          misses = !win_misses;
          spatial_hits = !win_spatial;
        }
        :: !points;
    win_start := pos;
    win_misses := 0;
    win_spatial := 0
  in
  let d = Simulator.create ?check policy trace.Gc_trace.Trace.blocks in
  Gc_trace.Trace.iteri
    (fun pos item ->
      let before_spatial = (Simulator.metrics d).Metrics.spatial_hits in
      (match Simulator.access d item with
      | Policy.Miss _ -> incr win_misses
      | Policy.Hit _ ->
          if (Simulator.metrics d).Metrics.spatial_hits > before_spatial then
            incr win_spatial);
      if (pos + 1) mod window = 0 then flush (pos + 1))
    trace;
  flush (Gc_trace.Trace.length trace);
  (List.rev !points, Simulator.metrics d)

let miss_rates points =
  List.map
    (fun p ->
      ( p.start,
        if p.accesses = 0 then 0.
        else float_of_int p.misses /. float_of_int p.accesses ))
    points
