(** Marking that loads {e and marks} the whole requested block — the
    strawman Section 6.1 compares GCM against.

    Marking every spatially loaded item means untouched block-mates are
    protected for the rest of the phase, so on traces without spatial
    locality the effective cache size shrinks by up to a factor of [B]
    (same failure mode as the Block Cache in Theorem 3).  {!Gcm} fixes
    this by leaving spatial loads unmarked; the [randomized] bench section
    shows the difference. *)

val create : k:int -> blocks:Gc_trace.Block_map.t -> rng:Gc_trace.Rng.t -> Policy.t
