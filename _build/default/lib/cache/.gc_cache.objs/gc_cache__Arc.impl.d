lib/cache/arc.ml: Lru_core Policy
