lib/cache/two_q.ml: Lru_core Policy
