lib/cache/marking.ml: Gc_trace Index_set Policy
