lib/cache/param_a.mli: Gc_trace Policy
