lib/cache/fifo.ml: Item_policy Lru_core
