lib/cache/simulator.mli: Gc_trace Metrics Policy
