lib/cache/iblp.mli: Gc_trace Policy
