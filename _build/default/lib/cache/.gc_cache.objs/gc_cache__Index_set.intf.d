lib/cache/index_set.mli: Gc_trace
