lib/cache/parallel.ml: Array Domain List Simulator
