lib/cache/lru_k.mli: Policy
