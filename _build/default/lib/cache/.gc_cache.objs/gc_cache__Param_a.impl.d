lib/cache/param_a.ml: Array Gc_trace Hashtbl List Lru_core Policy Seq
