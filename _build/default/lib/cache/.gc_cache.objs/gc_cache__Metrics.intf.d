lib/cache/metrics.mli: Format
