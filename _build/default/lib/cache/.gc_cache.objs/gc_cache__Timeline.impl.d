lib/cache/timeline.ml: Gc_trace List Metrics Policy Simulator
