lib/cache/clock.ml: Array Hashtbl Item_policy
