lib/cache/item_policy.ml: Policy
