lib/cache/metrics.ml: Format Printf
