lib/cache/attack.ml: Gc_trace Policy
