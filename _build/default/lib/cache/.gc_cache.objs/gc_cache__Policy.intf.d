lib/cache/policy.mli:
