lib/cache/set_assoc.mli: Policy
