lib/cache/arc.mli: Policy
