lib/cache/registry.mli: Gc_trace Policy
