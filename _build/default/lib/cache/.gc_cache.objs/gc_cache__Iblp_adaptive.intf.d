lib/cache/iblp_adaptive.mli: Gc_trace Policy
