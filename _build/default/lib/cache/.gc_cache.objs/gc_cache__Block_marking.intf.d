lib/cache/block_marking.mli: Gc_trace Policy
