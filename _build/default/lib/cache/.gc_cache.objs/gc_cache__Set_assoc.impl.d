lib/cache/set_assoc.ml: Array Lru Policy
