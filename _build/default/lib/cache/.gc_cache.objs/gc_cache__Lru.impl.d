lib/cache/lru.ml: Item_policy Lru_core
