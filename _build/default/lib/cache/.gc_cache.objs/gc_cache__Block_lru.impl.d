lib/cache/block_lru.ml: Array Gc_trace Hashtbl Lru_core Policy
