lib/cache/simulator.ml: Format Gc_trace Hashtbl List Metrics Policy
