lib/cache/s3_fifo.mli: Policy
