lib/cache/fwf.ml: Index_set Policy
