lib/cache/iblp.ml: Array Gc_trace Hashtbl Lru_core Policy
