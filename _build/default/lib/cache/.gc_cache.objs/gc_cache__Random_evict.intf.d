lib/cache/random_evict.mli: Gc_trace Policy
