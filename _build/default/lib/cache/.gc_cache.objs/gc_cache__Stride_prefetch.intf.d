lib/cache/stride_prefetch.mli: Gc_trace Policy
