lib/cache/block_lru.mli: Gc_trace Policy
