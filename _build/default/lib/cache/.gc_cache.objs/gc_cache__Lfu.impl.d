lib/cache/lfu.ml: Hashtbl Item_policy Lru_core
