lib/cache/replicates.ml: Float Format List Metrics Simulator
