lib/cache/parallel.mli: Gc_trace Metrics Policy
