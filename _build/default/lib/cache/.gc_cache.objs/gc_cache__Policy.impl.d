lib/cache/policy.ml:
