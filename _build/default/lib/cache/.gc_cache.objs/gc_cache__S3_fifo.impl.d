lib/cache/s3_fifo.ml: Hashtbl Lru_core Option Policy
