lib/cache/random_evict.ml: Gc_trace Index_set Item_policy
