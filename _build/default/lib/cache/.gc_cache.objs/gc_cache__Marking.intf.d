lib/cache/marking.mli: Gc_trace Policy
