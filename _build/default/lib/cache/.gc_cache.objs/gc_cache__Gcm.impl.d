lib/cache/gcm.ml: Array Gc_trace Index_set List Policy Seq
