lib/cache/iblp_adaptive.ml: Array Gc_trace Hashtbl Lru_core Policy
