lib/cache/timeline.mli: Gc_trace Metrics Policy
