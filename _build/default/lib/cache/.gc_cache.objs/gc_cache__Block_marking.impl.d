lib/cache/block_marking.ml: Array Gc_trace Index_set List Policy
