lib/cache/replicates.mli: Format Gc_trace Policy
