lib/cache/index_set.ml: Array Gc_trace Hashtbl
