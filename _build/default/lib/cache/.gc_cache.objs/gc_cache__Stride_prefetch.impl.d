lib/cache/stride_prefetch.ml: Gc_trace List Lru_core Policy
