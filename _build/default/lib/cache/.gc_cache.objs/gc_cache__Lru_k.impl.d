lib/cache/lru_k.ml: Hashtbl List Lru_core Option Policy
