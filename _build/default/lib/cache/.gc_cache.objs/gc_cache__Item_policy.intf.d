lib/cache/item_policy.mli: Policy
