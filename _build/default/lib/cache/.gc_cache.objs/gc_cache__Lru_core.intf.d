lib/cache/lru_core.mli:
