lib/cache/lru_core.ml: Hashtbl List Option
