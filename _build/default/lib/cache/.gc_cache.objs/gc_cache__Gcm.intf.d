lib/cache/gcm.mli: Gc_trace Policy
