lib/cache/fwf.mli: Policy
