type t = {
  mutable arr : int array;
  mutable len : int;
  pos : (int, int) Hashtbl.t;
}

let create () = { arr = Array.make 16 0; len = 0; pos = Hashtbl.create 64 }

let size t = t.len

let mem t x = Hashtbl.mem t.pos x

let add t x =
  if not (mem t x) then begin
    if t.len = Array.length t.arr then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.arr 0 bigger 0 t.len;
      t.arr <- bigger
    end;
    t.arr.(t.len) <- x;
    Hashtbl.add t.pos x t.len;
    t.len <- t.len + 1
  end

let remove t x =
  match Hashtbl.find_opt t.pos x with
  | None -> ()
  | Some i ->
      let last = t.arr.(t.len - 1) in
      t.arr.(i) <- last;
      Hashtbl.replace t.pos last i;
      Hashtbl.remove t.pos x;
      t.len <- t.len - 1

let random t rng =
  if t.len = 0 then invalid_arg "Index_set.random: empty";
  t.arr.(Gc_trace.Rng.int rng t.len)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  !acc

let clear t =
  t.len <- 0;
  Hashtbl.reset t.pos
