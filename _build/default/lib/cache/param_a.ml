module P = struct
  type t = {
    k : int;
    a : int;
    blocks : Gc_trace.Block_map.t;
    recency : Lru_core.t;  (* keys are items *)
    run : (int, unit) Hashtbl.t;  (* distinct items in the current run *)
    mutable run_block : int;  (* block of the current consecutive run *)
  }

  let name = "param-a"
  let k t = t.k
  let mem t x = Lru_core.mem t.recency x
  let occupancy t = Lru_core.size t.recency

  let access t x =
    let blk = Gc_trace.Block_map.block_of t.blocks x in
    if blk <> t.run_block then begin
      Hashtbl.reset t.run;
      t.run_block <- blk
    end;
    Hashtbl.replace t.run x ();
    if Lru_core.mem t.recency x then begin
      Lru_core.touch t.recency x;
      Policy.Hit { evicted = [] }
    end
    else begin
      let load_whole_block = Hashtbl.length t.run >= t.a in
      let to_load =
        if load_whole_block then
          Gc_trace.Block_map.items_of t.blocks blk
          |> Array.to_seq
          |> Seq.filter (fun y -> not (Lru_core.mem t.recency y))
          |> List.of_seq
        else [ x ]
      in
      let need = List.length to_load in
      let evicted = ref [] in
      while Lru_core.size t.recency + need > t.k do
        match Lru_core.pop_lru t.recency with
        | Some v -> evicted := v :: !evicted
        | None -> assert false
      done;
      (* Insert spatial prefetches first so the requested item ends up most
         recently used. *)
      List.iter
        (fun y -> if y <> x then Lru_core.touch t.recency y)
        to_load;
      Lru_core.touch t.recency x;
      Policy.Miss { loaded = to_load; evicted = !evicted }
    end
end

let create ~k ~a ~blocks =
  if k < 1 then invalid_arg "Param_a.create: k must be >= 1";
  if a < 1 then invalid_arg "Param_a.create: a must be >= 1";
  if k < Gc_trace.Block_map.block_size blocks then
    invalid_arg "Param_a.create: k smaller than block size";
  Policy.Instance
    ( (module P),
      {
        P.k;
        a;
        blocks;
        recency = Lru_core.create ();
        run = Hashtbl.create 16;
        run_block = -1;
      } )
