(** Functor building an Item-Cache policy from an eviction strategy.

    An {e Item Cache} (paper Section 2, "Baseline policies") loads only the
    requested item on a miss.  All such policies share the same skeleton and
    differ only in victim selection; this functor captures the skeleton so
    LRU / FIFO / LFU / CLOCK / random share one audited implementation. *)

module type STRATEGY = sig
  type t
  type config

  val name : string
  val create : config -> t
  val mem : t -> int -> bool
  val size : t -> int

  val on_hit : t -> int -> unit
  (** The item is present and was just re-referenced. *)

  val insert : t -> int -> unit
  (** The item is absent and was just loaded. *)

  val pop_victim : t -> int
  (** Remove and return an eviction victim; only called when non-empty. *)
end

module Make (S : STRATEGY) : sig
  val create : k:int -> S.config -> Policy.t
  (** [k >= 1]. *)
end
