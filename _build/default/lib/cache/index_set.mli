(** A set of ints with O(1) add, remove, membership, and uniform random
    choice — the standard array + position-table structure.  Used by every
    randomized policy (random eviction, marking, GCM). *)

type t

val create : unit -> t
val size : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
(** No-op if present. *)

val remove : t -> int -> unit
(** No-op if absent. *)

val random : t -> Gc_trace.Rng.t -> int
(** Uniform random member.  Raises [Invalid_argument] if empty. *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val clear : t -> unit
