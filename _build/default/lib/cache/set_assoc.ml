module P = struct
  type t = {
    sets : int;
    ways : int;
    table : Policy.t array;
  }

  let name = "set-assoc"
  let k t = t.sets * t.ways
  let set_of t x = x mod t.sets
  let mem t x = Policy.mem t.table.(set_of t x) x

  let occupancy t =
    Array.fold_left (fun acc p -> acc + Policy.occupancy p) 0 t.table

  let access t x = Policy.access t.table.(set_of t x) x
end

let create ~sets ~ways ~make_way_policy =
  if sets < 1 || ways < 1 then
    invalid_arg "Set_assoc.create: sets and ways must be >= 1";
  let table = Array.init sets (fun _ -> make_way_policy ~k:ways) in
  Array.iter
    (fun p ->
      if Policy.k p <> ways then
        invalid_arg "Set_assoc.create: way policy capacity mismatch")
    table;
  Policy.Instance ((module P), { P.sets; ways; table })

let create_lru ~sets ~ways =
  create ~sets ~ways ~make_way_policy:(fun ~k -> Lru.create ~k)
