module P = struct
  type t = {
    k : int;
    blocks : Gc_trace.Block_map.t;
    rng : Gc_trace.Rng.t;
    marked : Index_set.t;
    unmarked : Index_set.t;
  }

  let name = "block-marking"
  let k t = t.k
  let mem t x = Index_set.mem t.marked x || Index_set.mem t.unmarked x
  let occupancy t = Index_set.size t.marked + Index_set.size t.unmarked

  let new_phase t =
    Index_set.iter (fun x -> Index_set.add t.unmarked x) t.marked;
    Index_set.clear t.marked

  let evict_random_unmarked t =
    let v = Index_set.random t.unmarked t.rng in
    Index_set.remove t.unmarked v;
    v

  let access t x =
    if mem t x then begin
      Index_set.remove t.unmarked x;
      Index_set.add t.marked x;
      Policy.Hit { evicted = [] }
    end
    else begin
      let blk = Gc_trace.Block_map.block_of t.blocks x in
      let evicted = ref [] in
      (* Room for the requested item: classic marking rule, the only step
         allowed to start a new phase. *)
      if occupancy t >= t.k then begin
        if Index_set.size t.unmarked = 0 then new_phase t;
        evicted := [ evict_random_unmarked t ]
      end;
      Index_set.add t.marked x;
      let loaded = ref [ x ] in
      (* Load and MARK the rest of the block (the design flaw Section 6
         points out: marked block-mates occupy protected space for the rest
         of the phase even if never referenced).  Extras fill free space or
         displace unmarked items; they never force a phase reset.  Victims
         are unmarked while loads are marked, so a load is never evicted
         within the same miss. *)
      Gc_trace.Block_map.items_of t.blocks blk
      |> Array.iter (fun y ->
             if (not (mem t y)) && not (List.mem y !evicted) then
               if occupancy t < t.k then begin
                 Index_set.add t.marked y;
                 loaded := y :: !loaded
               end
               else if Index_set.size t.unmarked > 0 then begin
                 evicted := evict_random_unmarked t :: !evicted;
                 Index_set.add t.marked y;
                 loaded := y :: !loaded
               end);
      Policy.Miss { loaded = !loaded; evicted = !evicted }
    end
end

let create ~k ~blocks ~rng =
  if k < Gc_trace.Block_map.block_size blocks then
    invalid_arg "Block_marking.create: k smaller than block size";
  Policy.Instance
    ( (module P),
      {
        P.k;
        blocks;
        rng;
        marked = Index_set.create ();
        unmarked = Index_set.create ();
      } )
