(** ARC (Adaptive Replacement Cache, Megiddo & Modha 2003) at item
    granularity.

    A strong practical baseline beyond the paper's LRU: two LRU lists (seen
    once / seen at least twice) plus ghost lists whose hits steer the
    adaptation parameter.  Like every Item Cache it is spatially blind, so
    Theorem 2's lower bound applies to it unchanged — the [empirical_thm2]
    bench exercises exactly that. *)

val create : k:int -> Policy.t
(** [k >= 2] (the two lists need at least one slot each to adapt). *)
