module Strategy = struct
  type t = Lru_core.t
  type config = unit

  let name = "lru"
  let create () = Lru_core.create ()
  let mem = Lru_core.mem
  let size = Lru_core.size
  let on_hit = Lru_core.touch
  let insert = Lru_core.touch

  let pop_victim t =
    match Lru_core.pop_lru t with Some v -> v | None -> assert false
end

module M = Item_policy.Make (Strategy)

let create ~k = M.create ~k ()
