(** Item-granularity LRU — the baseline Item Cache of the paper.

    Strong on temporal locality, blind to spatial locality: Theorem 2 shows
    any Item Cache has competitive ratio at least
    [B (k - B + 1) / (k - h + 1)] in GC caching. *)

val create : k:int -> Policy.t
