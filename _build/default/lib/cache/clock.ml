module Strategy = struct
  type t = {
    capacity : int;
    slots : int array;  (* item per occupied slot *)
    referenced : bool array;
    pos : (int, int) Hashtbl.t;  (* item -> slot *)
    mutable used : int;
    mutable hand : int;
    mutable probe : int;  (* persistent free-slot cursor for inserts *)
  }

  type config = int  (* capacity *)

  let name = "clock"

  let create capacity =
    {
      capacity;
      slots = Array.make capacity (-1);
      referenced = Array.make capacity false;
      pos = Hashtbl.create 256;
      used = 0;
      hand = 0;
      probe = 0;
    }

  let mem t x = Hashtbl.mem t.pos x
  let size t = t.used

  let on_hit t x = t.referenced.(Hashtbl.find t.pos x) <- true

  let insert t x =
    (* Only called when size < capacity: there is a free slot.  Free slots
       hold -1; a persistent cursor makes the scan amortized O(1) (evictions
       free the slot right behind the hand, which the cursor tracks). *)
    let rec find i = if t.slots.(i) = -1 then i else find ((i + 1) mod t.capacity) in
    let slot = find t.probe in
    t.probe <- (slot + 1) mod t.capacity;
    t.slots.(slot) <- x;
    t.referenced.(slot) <- false;
    Hashtbl.add t.pos x slot;
    t.used <- t.used + 1

  let pop_victim t =
    let rec sweep () =
      let s = t.hand in
      t.hand <- (t.hand + 1) mod t.capacity;
      if t.slots.(s) = -1 then sweep ()
      else if t.referenced.(s) then begin
        t.referenced.(s) <- false;
        sweep ()
      end
      else begin
        let v = t.slots.(s) in
        t.slots.(s) <- -1;
        Hashtbl.remove t.pos v;
        t.used <- t.used - 1;
        v
      end
    in
    sweep ()
end

module M = Item_policy.Make (Strategy)

let create ~k = M.create ~k k
