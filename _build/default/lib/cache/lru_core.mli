(** Intrusive recency list over integer keys.

    O(1) touch / insert / remove / LRU query; the building block for every
    recency-based policy in this library (item LRU, block LRU, both IBLP
    layers, FIFO as insert-without-touch). *)

type t

val create : unit -> t
val size : t -> int
val mem : t -> int -> bool

val touch : t -> int -> unit
(** Insert the key at the MRU end, or move it there if present. *)

val insert_if_absent : t -> int -> unit
(** Insert at MRU end only if absent (FIFO semantics: no move on re-touch). *)

val remove : t -> int -> unit
(** No-op if absent. *)

val lru : t -> int option
(** Least recently used key. *)

val mru : t -> int option

val pop_lru : t -> int option
(** Remove and return the LRU key. *)

val iter_mru_to_lru : (int -> unit) -> t -> unit

val to_list_mru_first : t -> int list
