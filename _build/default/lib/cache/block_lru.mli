(** Block Cache running LRU — the paper's coarse-granularity baseline.

    Loads {e all} items of the requested block on a miss and evicts whole
    blocks, LRU over blocks.  Excellent on spatial locality; on traces that
    touch one item per block, the effective capacity shrinks by a factor of
    [B] (Theorem 3: competitive ratio at least [k / (k - B (h - 1))]). *)

val create : k:int -> blocks:Gc_trace.Block_map.t -> Policy.t
(** Requires [k >= Block_map.block_size blocks]. *)
