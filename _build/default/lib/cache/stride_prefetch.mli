(** LRU with next-line prefetch inside the block — the deterministic
    "load some but not all" point on the spectrum.

    On a miss, loads the requested item plus the next [degree] items of the
    same block (hardware next-N-line prefetch, restricted to the row so it
    is free under the GC cost model).  [degree = 0] is plain LRU;
    [degree = B - 1] approaches the a = 1 whole-block policy.  Section
    4.4's analysis says intermediate subsets cannot beat the extremes in
    the worst case; the [b_sweep]/[randomized] benches show where they sit
    on average. *)

val create : k:int -> degree:int -> blocks:Gc_trace.Block_map.t -> Policy.t
(** [degree >= 0]; prefetched items are inserted cold (at LRU positions
    just above the victim boundary... specifically: below the requested
    item) so useless prefetches leave quickly. *)
