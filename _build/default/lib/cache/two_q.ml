module P = struct
  type t = {
    k : int;
    in_cap : int;  (* A1in capacity; Am gets the rest *)
    out_cap : int;  (* ghost capacity *)
    a1in : Lru_core.t;  (* FIFO: no touch on hit *)
    a1out : Lru_core.t;  (* ghost keys *)
    am : Lru_core.t;  (* main LRU *)
  }

  let name = "2q"
  let k t = t.k
  let mem t x = Lru_core.mem t.a1in x || Lru_core.mem t.am x
  let occupancy t = Lru_core.size t.a1in + Lru_core.size t.am

  (* Make room for one incoming item, per the 2Q reclaim rule. *)
  let reclaim t =
    if Lru_core.size t.a1in >= t.in_cap then begin
      match Lru_core.pop_lru t.a1in with
      | Some v ->
          Lru_core.touch t.a1out v;
          if Lru_core.size t.a1out > t.out_cap then
            ignore (Lru_core.pop_lru t.a1out);
          v
      | None -> assert false
    end
    else begin
      match Lru_core.pop_lru t.am with
      | Some v -> v
      | None -> (
          match Lru_core.pop_lru t.a1in with
          | Some v -> v
          | None -> assert false)
    end

  let access t x =
    if Lru_core.mem t.am x then begin
      Lru_core.touch t.am x;
      Policy.Hit { evicted = [] }
    end
    else if Lru_core.mem t.a1in x then
      (* Hit in the admission queue: 2Q leaves it in place (FIFO). *)
      Policy.Hit { evicted = [] }
    else begin
      let evicted = ref [] in
      if occupancy t >= t.k then evicted := [ reclaim t ];
      if Lru_core.mem t.a1out x then begin
        (* Re-reference after eviction from A1in: promote to Am. *)
        Lru_core.remove t.a1out x;
        Lru_core.touch t.am x
      end
      else Lru_core.insert_if_absent t.a1in x;
      Policy.Miss { loaded = [ x ]; evicted = !evicted }
    end
end

let create ?(in_fraction = 0.25) ?(out_fraction = 0.5) ~k () =
  if k < 2 then invalid_arg "Two_q.create: k must be >= 2";
  if in_fraction <= 0. || in_fraction >= 1. then
    invalid_arg "Two_q.create: in_fraction must be in (0, 1)";
  let in_cap = max 1 (int_of_float (in_fraction *. float_of_int k)) in
  let out_cap = max 1 (int_of_float (out_fraction *. float_of_int k)) in
  Policy.Instance
    ( (module P),
      {
        P.k;
        in_cap;
        out_cap;
        a1in = Lru_core.create ();
        a1out = Lru_core.create ();
        am = Lru_core.create ();
      } )
