(** Set-associative organization: hardware-faithful constrained placement.

    Real SRAM caches are not fully associative; an item may only live in
    the set its index bits select.  This wrapper partitions capacity into
    [sets] independent instances of an inner item policy with [ways] slots
    each (item [x] maps to set [x mod sets]).

    It is an Item Cache (loads only the requested item): Theorem 2 applies,
    and comparing it against fully associative LRU isolates conflict
    misses.  Not composable with block-loading inner policies — a block's
    items span many sets, which would break per-set capacity accounting. *)

val create :
  sets:int ->
  ways:int ->
  make_way_policy:(k:int -> Policy.t) ->
  Policy.t
(** Total capacity [sets * ways].  [make_way_policy ~k:ways] builds each
    set's replacement policy (e.g. [fun ~k -> Lru.create ~k]). *)

val create_lru : sets:int -> ways:int -> Policy.t
(** Set-associative LRU, the standard hardware configuration. *)
