module Strategy = struct
  type t = {
    freq : (int, int) Hashtbl.t;  (* item -> access count *)
    buckets : (int, Lru_core.t) Hashtbl.t;  (* count -> recency list *)
    mutable min_freq : int;
    mutable count : int;
  }

  type config = unit

  let name = "lfu"

  let create () =
    { freq = Hashtbl.create 256; buckets = Hashtbl.create 64; min_freq = 1; count = 0 }

  let mem t x = Hashtbl.mem t.freq x
  let size t = t.count

  let bucket t f =
    match Hashtbl.find_opt t.buckets f with
    | Some b -> b
    | None ->
        let b = Lru_core.create () in
        Hashtbl.add t.buckets f b;
        b

  let promote t x =
    let f = Hashtbl.find t.freq x in
    let b = bucket t f in
    Lru_core.remove b x;
    if Lru_core.size b = 0 then Hashtbl.remove t.buckets f;
    Hashtbl.replace t.freq x (f + 1);
    Lru_core.touch (bucket t (f + 1)) x;
    if t.min_freq = f && not (Hashtbl.mem t.buckets f) then
      t.min_freq <- f + 1

  let on_hit t x = promote t x

  let insert t x =
    Hashtbl.replace t.freq x 1;
    Lru_core.touch (bucket t 1) x;
    t.min_freq <- 1;
    t.count <- t.count + 1

  let pop_victim t =
    (* min_freq can lag when the minimum bucket drained via eviction; scan
       upward (amortized O(1) because it only moves forward between
       resets to 1). *)
    while not (Hashtbl.mem t.buckets t.min_freq) do
      t.min_freq <- t.min_freq + 1
    done;
    let b = Hashtbl.find t.buckets t.min_freq in
    let v = match Lru_core.pop_lru b with Some v -> v | None -> assert false in
    if Lru_core.size b = 0 then Hashtbl.remove t.buckets t.min_freq;
    Hashtbl.remove t.freq v;
    t.count <- t.count - 1;
    v
end

module M = Item_policy.Make (Strategy)

let create ~k = M.create ~k ()
