type outcome =
  | Hit of { evicted : int list }
  | Miss of { loaded : int list; evicted : int list }

module type S = sig
  type t

  val name : string
  val k : t -> int
  val mem : t -> int -> bool
  val occupancy : t -> int
  val access : t -> int -> outcome
end

type t = Instance : (module S with type t = 'a) * 'a -> t

let name (Instance ((module P), _)) = P.name
let k (Instance ((module P), st)) = P.k st
let mem (Instance ((module P), st)) item = P.mem st item
let occupancy (Instance ((module P), st)) = P.occupancy st
let access (Instance ((module P), st)) item = P.access st item

module Oracle = struct
  type nonrec t = t

  let access t item = ignore (access t item)
  let mem = mem
end
