type summary = {
  runs : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize values =
  let n = List.length values in
  if n = 0 then invalid_arg "Replicates.summarize: no values";
  let nf = float_of_int n in
  let mean = List.fold_left ( +. ) 0. values /. nf in
  let var =
    List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. values /. nf
  in
  {
    runs = n;
    mean;
    stddev = sqrt var;
    min = List.fold_left Float.min infinity values;
    max = List.fold_left Float.max neg_infinity values;
  }

let misses ~make ~trace ~seeds =
  if seeds = [] then invalid_arg "Replicates.misses: no seeds";
  summarize
    (List.map
       (fun seed ->
         let m = Simulator.run ~check:false (make ~seed) trace in
         float_of_int m.Metrics.misses)
       seeds)

let pp fmt s =
  Format.fprintf fmt "mean %.1f (sd %.1f, min %.0f, max %.0f, n=%d)" s.mean
    s.stddev s.min s.max s.runs
