module type STRATEGY = sig
  type t
  type config

  val name : string
  val create : config -> t
  val mem : t -> int -> bool
  val size : t -> int
  val on_hit : t -> int -> unit
  val insert : t -> int -> unit
  val pop_victim : t -> int
end

module Make (S : STRATEGY) = struct
  module P = struct
    type t = { k : int; state : S.t }

    let name = S.name
    let k t = t.k
    let mem t item = S.mem t.state item
    let occupancy t = S.size t.state

    let access t item =
      if S.mem t.state item then begin
        S.on_hit t.state item;
        Policy.Hit { evicted = [] }
      end
      else begin
        let evicted = ref [] in
        while S.size t.state >= t.k do
          evicted := S.pop_victim t.state :: !evicted
        done;
        S.insert t.state item;
        Policy.Miss { loaded = [ item ]; evicted = !evicted }
      end
  end

  let create ~k config =
    if k < 1 then invalid_arg (S.name ^ ": k must be >= 1");
    Policy.Instance ((module P), { P.k; state = S.create config })
end
