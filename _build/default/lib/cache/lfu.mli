(** Item-granularity LFU with LRU tie-breaking, O(1) per operation.

    Uses the classic frequency-bucket structure: items live in per-frequency
    recency lists and a running minimum frequency pointer selects victims. *)

val create : k:int -> Policy.t
