module P = struct
  type t = {
    k : int;
    load_limit : int;
    blocks : Gc_trace.Block_map.t;
    rng : Gc_trace.Rng.t;
    marked : Index_set.t;
    unmarked : Index_set.t;
  }

  let name = "gcm"
  let k t = t.k
  let mem t x = Index_set.mem t.marked x || Index_set.mem t.unmarked x
  let occupancy t = Index_set.size t.marked + Index_set.size t.unmarked

  let mark t x =
    Index_set.remove t.unmarked x;
    Index_set.add t.marked x

  let new_phase t =
    Index_set.iter (fun x -> Index_set.add t.unmarked x) t.marked;
    Index_set.clear t.marked

  let evict_random_unmarked t =
    let v = Index_set.random t.unmarked t.rng in
    Index_set.remove t.unmarked v;
    v

  (* A random unmarked victim outside block [blk]; [None] when every
     unmarked item belongs to [blk] (replacing block items with other items
     of the same block would be pointless churn). *)
  let victim_outside_block t blk =
    let outside v = Gc_trace.Block_map.block_of t.blocks v <> blk in
    let rec try_sample n =
      if n = 0 then
        (* Fall back to a scan so we never miss an existing victim. *)
        List.find_opt outside (Index_set.to_list t.unmarked)
      else
        let v = Index_set.random t.unmarked t.rng in
        if outside v then Some v else try_sample (n - 1)
    in
    if Index_set.size t.unmarked = 0 then None else try_sample 8

  let access t x =
    if mem t x then begin
      mark t x;
      Policy.Hit { evicted = [] }
    end
    else begin
      let blk = Gc_trace.Block_map.block_of t.blocks x in
      let evicted = ref [] in
      (* Make room for the requested item: this is the only step allowed to
         start a new phase. *)
      if occupancy t >= t.k then begin
        if Index_set.size t.unmarked = 0 then new_phase t;
        evicted := [ evict_random_unmarked t ]
      end;
      Index_set.add t.marked x;
      let loaded = ref [ x ] in
      (* Spatial loads: the rest of the block, randomly ordered, unmarked.
         They consume free space first, then replace unmarked items from
         other blocks; marked items are never displaced for them.  The
         victim just evicted for [x] is excluded — re-loading it in the
         same miss would be pure churn. *)
      let extras =
        Gc_trace.Block_map.items_of t.blocks blk
        |> Array.to_seq
        |> Seq.filter (fun y ->
               y <> x && not (mem t y) && not (List.mem y !evicted))
        |> Array.of_seq
      in
      Gc_trace.Rng.shuffle t.rng extras;
      let budget = ref (t.load_limit - 1) in
      (try
         Array.iter
           (fun y ->
             if !budget <= 0 then raise Exit;
             decr budget;
             if occupancy t < t.k then begin
               Index_set.add t.unmarked y;
               loaded := y :: !loaded
             end
             else begin
               match victim_outside_block t blk with
               | Some v ->
                   Index_set.remove t.unmarked v;
                   evicted := v :: !evicted;
                   Index_set.add t.unmarked y;
                   loaded := y :: !loaded
               | None -> raise Exit
             end)
           extras
       with Exit -> ());
      Policy.Miss { loaded = !loaded; evicted = !evicted }
    end
end

let create ?load_limit ~k ~blocks ~rng () =
  if k < 1 then invalid_arg "Gcm.create: k must be >= 1";
  let load_limit =
    match load_limit with
    | None -> Gc_trace.Block_map.block_size blocks
    | Some m ->
        if m < 1 then invalid_arg "Gcm.create: load_limit must be >= 1";
        m
  in
  Policy.Instance
    ( (module P),
      {
        P.k;
        load_limit;
        blocks;
        rng;
        marked = Index_set.create ();
        unmarked = Index_set.create ();
      } )
