(** Item-granularity random replacement. *)

val create : k:int -> rng:Gc_trace.Rng.t -> Policy.t
