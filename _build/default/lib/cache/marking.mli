(** Classic randomized marking algorithm (Fiat et al.), item granularity.

    Items are marked when requested; victims are drawn uniformly from the
    unmarked items, and when everything is marked a new phase begins (all
    marks cleared).  Ignores granularity change entirely — Section 6 of the
    paper notes this costs a factor of [B] against spatial traces, which
    motivates {!Gcm}. *)

val create : k:int -> rng:Gc_trace.Rng.t -> Policy.t
