module P = struct
  type t = {
    k : int;
    rng : Gc_trace.Rng.t;
    marked : Index_set.t;
    unmarked : Index_set.t;
  }

  let name = "marking"
  let k t = t.k
  let mem t x = Index_set.mem t.marked x || Index_set.mem t.unmarked x
  let occupancy t = Index_set.size t.marked + Index_set.size t.unmarked

  let mark t x =
    Index_set.remove t.unmarked x;
    Index_set.add t.marked x

  let new_phase t =
    Index_set.iter (fun x -> Index_set.add t.unmarked x) t.marked;
    Index_set.clear t.marked

  let evict_random_unmarked t =
    let v = Index_set.random t.unmarked t.rng in
    Index_set.remove t.unmarked v;
    v

  let access t x =
    if mem t x then begin
      mark t x;
      Policy.Hit { evicted = [] }
    end
    else begin
      let evicted = ref [] in
      if occupancy t >= t.k then begin
        if Index_set.size t.unmarked = 0 then new_phase t;
        evicted := [ evict_random_unmarked t ]
      end;
      Index_set.add t.marked x;
      Policy.Miss { loaded = [ x ]; evicted = !evicted }
    end
end

let create ~k ~rng =
  if k < 1 then invalid_arg "Marking.create: k must be >= 1";
  Policy.Instance
    ( (module P),
      {
        P.k;
        rng;
        marked = Index_set.create ();
        unmarked = Index_set.create ();
      } )
