module P = struct
  type t = { k : int; cached : Index_set.t }

  let name = "fwf"
  let k t = t.k
  let mem t x = Index_set.mem t.cached x
  let occupancy t = Index_set.size t.cached

  let access t x =
    if Index_set.mem t.cached x then Policy.Hit { evicted = [] }
    else begin
      let evicted =
        if Index_set.size t.cached >= t.k then begin
          let all = Index_set.to_list t.cached in
          Index_set.clear t.cached;
          all
        end
        else []
      in
      Index_set.add t.cached x;
      Policy.Miss { loaded = [ x ]; evicted }
    end
end

let create ~k =
  if k < 1 then invalid_arg "Fwf.create: k must be >= 1";
  Policy.Instance ((module P), { P.k; cached = Index_set.create () })
