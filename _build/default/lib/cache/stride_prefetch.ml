module P = struct
  type t = {
    k : int;
    degree : int;
    blocks : Gc_trace.Block_map.t;
    recency : Lru_core.t;
  }

  let name = "stride-prefetch"
  let k t = t.k
  let mem t x = Lru_core.mem t.recency x
  let occupancy t = Lru_core.size t.recency

  let access t x =
    if Lru_core.mem t.recency x then begin
      Lru_core.touch t.recency x;
      Policy.Hit { evicted = [] }
    end
    else begin
      let blk = Gc_trace.Block_map.block_of t.blocks x in
      (* The next [degree] items after x within the same block, uncached. *)
      let prefetch =
        List.init t.degree (fun d -> x + d + 1)
        |> List.filter (fun y ->
               Gc_trace.Block_map.block_of t.blocks y = blk
               && not (Lru_core.mem t.recency y))
      in
      let to_load = x :: prefetch in
      let need = List.length to_load in
      let evicted = ref [] in
      while Lru_core.size t.recency + need > t.k do
        match Lru_core.pop_lru t.recency with
        | Some v -> evicted := v :: !evicted
        | None -> assert false
      done;
      (* Prefetches enter below the demand miss in recency order. *)
      List.iter (Lru_core.touch t.recency) (List.rev prefetch);
      Lru_core.touch t.recency x;
      Policy.Miss { loaded = to_load; evicted = !evicted }
    end
end

let create ~k ~degree ~blocks =
  if k < 1 then invalid_arg "Stride_prefetch.create: k must be >= 1";
  if degree < 0 then invalid_arg "Stride_prefetch.create: degree must be >= 0";
  if k <= degree then
    invalid_arg "Stride_prefetch.create: k must exceed the prefetch degree";
  Policy.Instance
    ( (module P),
      { P.k; degree; blocks; recency = Lru_core.create () } )
