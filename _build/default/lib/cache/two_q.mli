(** 2Q (Johnson & Shasha 1994), simplified full-version, item granularity.

    A FIFO admission queue [A1in] filters one-hit wonders; items re-
    referenced after leaving it (tracked by the ghost queue [A1out]) enter
    the main LRU [Am].  Another spatially blind Item Cache baseline. *)

val create : ?in_fraction:float -> ?out_fraction:float -> k:int -> unit -> Policy.t
(** [in_fraction] of [k] goes to A1in (default 0.25); the ghost A1out
    remembers [out_fraction * k] keys (default 0.5).  [k >= 2]. *)
