bin/gcexp.mli:
