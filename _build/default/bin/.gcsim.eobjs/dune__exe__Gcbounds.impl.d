bin/gcbounds.ml: Arg Cmd Cmdliner Format Gc_bounds List Lower_bounds Partitioning Sleator_tarjan Term
