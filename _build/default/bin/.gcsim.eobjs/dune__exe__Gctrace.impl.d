bin/gctrace.ml: Arg Cmd Cmdliner Filename Float Format Gc_locality Gc_trace List Printf Term
