bin/gctrace.mli:
