bin/gcsim.mli:
