bin/gcbounds.mli:
