bin/gcexp.ml: Arg Cmd Cmdliner Filename Float Gc_cache Gc_offline Gc_trace List Printf Term
