bin/gcsim.ml: Arg Cmd Cmdliner Filename Format Gc_cache Gc_offline Gc_trace List Printf Term
